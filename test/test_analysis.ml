(* Tests for the static LFRC discipline checker: one deliberately broken
   mini-structure per defect class, each of which the checker must flag
   with the right class (several only on a non-default path, proving the
   enumerator actually explores); a bypass fixture that calls Lfrc
   directly under the symbolic environment; and the clean-pass gate — the
   checker must report zero violations on every shipped structure. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Env = Lfrc_core.Env
module Ir = Lfrc_analysis.Ir
module Absint = Lfrc_analysis.Absint
module Report = Lfrc_analysis.Report
module Checker = Lfrc_analysis.Checker
module Catalog = Lfrc_structures.Catalog

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let fixture_layout = Layout.make ~name:"fixture" ~n_ptrs:2 ~n_vals:1

(* Small limits keep the suite quick; every fixture's defect is reachable
   within a handful of decision flips. *)
let limits = { Checker.max_paths = 60; max_decisions = 24 }

(* Each fixture builds one anchor object during (muted) setup so the
   action has a real cell to load from, then misbehaves in the action. *)

let classes_of (r : Report.structure_report) =
  List.concat_map
    (fun (a : Report.action_report) ->
      List.map (fun (f : Report.finding) -> f.Report.cls) a.Report.findings)
    r.Report.actions

let has_class cls r = List.mem cls (classes_of r)

let errors_of (r : Report.structure_report) =
  Report.errors { Report.structures = [ r ] }

(* --- the five defect classes --- *)

let test_flags_leak () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-leak"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l
              (* no retire: leaks on every completed path *) );
        ])
  in
  checkb "leak flagged" true (has_class Absint.Leak r);
  checkb "has errors" true (errors_of r > 0)

let test_flags_double_destroy () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-double-destroy"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              O.retire ctx l;
              O.retire ctx l );
        ])
  in
  checkb "double-destroy flagged" true (has_class Absint.Double_destroy r)

let test_flags_use_after_retire () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-use-after-retire"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.retire ctx l;
              O.load ctx cell l;
              O.retire ctx l );
        ])
  in
  checkb "use-after-retire flagged" true (has_class Absint.Use_after_retire r)

(* The raw pointer escapes only on paths where the load observed a real
   object — the default (null) path is clean, so catching this proves the
   enumerator explores non-default oracle choices. *)
let test_flags_escaping_get () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-escaping-get"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              let p = O.get l in
              O.retire ctx l;
              (* p is now a dangling borrow *)
              ignore (O.cas ctx cell ~old_ptr:p ~new_ptr:Heap.null) );
        ])
  in
  checkb "escaping-get flagged" true (has_class Absint.Escaping_get r)

let test_flags_unowned_store () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-unowned-store"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              let p = O.get l in
              O.retire ctx l;
              O.store ctx cell p );
        ])
  in
  checkb "unowned-store flagged" true (has_class Absint.Unowned_store r)

(* The borrow itself is never *used* after the owner dies — so
   escaping-get stays quiet — but it is still held when the flush runs,
   which under deferred-rc is exactly when the object may be freed. *)
let test_flags_borrow_across_flush () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-borrow-across-flush"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              let _p = O.get l in
              O.retire ctx l;
              (* the borrow's only owner is gone; the flush may free it *)
              O.flush ctx );
        ])
  in
  checkb "borrow-across-flush flagged" true
    (has_class Absint.Borrow_across_flush r)

(* A live owner spanning the flush keeps the borrow safe: the parked
   decrements cannot drop the object's count to zero while [l] owns it. *)
let test_borrow_with_live_owner_spans_flush () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-borrow-owned-flush"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              let _p = O.get l in
              O.flush ctx;
              O.retire ctx l );
        ])
  in
  checki "owned borrow across flush is clean" 0 (errors_of r)

(* The unbalanced split: the copy mints a second weight-bearing
   reference to the loaded object and only the original is ever retired.
   Under wait-free weighted rc that strands weight on the count forever
   (the object can never reach zero), so the per-object mint/consume
   ledger must flag it — on the non-null path only, like escaping-get. *)
let test_flags_weight_unbalanced () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-weight-split"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              (if O.get l <> Heap.null then
                 let m = O.declare ctx in
                 O.copy ctx m (O.get l)
                 (* the split is never dropped: its weight strands *));
              O.retire ctx l );
        ])
  in
  checkb "weight-unbalanced flagged" true
    (has_class Absint.Weight_unbalanced r);
  checkb "weight imbalance is an error" true (errors_of r > 0)

(* The balanced sibling of the fixture above (split, then drop both
   sides) must stay ledger-clean: conservation is about matching, not
   about forbidding splits. *)
let test_balanced_split_clean () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-weight-balanced"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              (if O.get l <> Heap.null then
                 let m = O.declare ctx in
                 O.copy ctx m (O.get l);
                 O.retire ctx m);
              O.retire ctx l );
        ])
  in
  checkb "balanced split not flagged" false
    (has_class Absint.Weight_unbalanced r);
  checki "balanced split fixture clean" 0 (errors_of r)

(* --- OPS bypass --- *)

let test_flags_lfrc_bypass () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-bypass"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        ignore ctx;
        [
          ( "op",
            fun () ->
              ignore (Lfrc_core.Lfrc.alloc env fixture_layout) );
        ])
  in
  checkb "bypass flagged" true (has_class Absint.Lfrc_bypass r)

(* --- the tier obligation --- *)

(* The same builder analyzed under both tier claims. The dcas itself is
   ownership-clean (all-null operands), so the *only* possible finding is
   the tier violation — under the Cas claim it must fire, under the
   default Dcas tier the report must be empty. This is the dynamic half
   of the tier contract: catalog entries cannot reach this state (a
   [Cas_pack] builder types against [OPS_CAS] and cannot name dcas), but
   hand-written analyses claiming a tier can lie, and the checker is what
   catches them. *)
let tier_fixture (module O : Lfrc_core.Ops_intf.OPS) env =
  let ctx = O.make_ctx env in
  let anchor = O.declare ctx in
  O.alloc ctx fixture_layout anchor;
  let c0 = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
  let c1 = Heap.ptr_cell (Env.heap env) (O.get anchor) 1 in
  [
    ( "op",
      fun () ->
        ignore
          (O.dcas ctx c0 c1 ~old0:Heap.null ~old1:Heap.null ~new0:Heap.null
             ~new1:Heap.null) );
  ]

let test_flags_dcas_in_cas_tier () =
  let r =
    Checker.analyze_actions ~limits ~tier:Catalog.Cas ~name:"fixture-tier"
      tier_fixture
  in
  checkb "dcas-in-cas-tier flagged" true (has_class Absint.Dcas_in_cas_tier r);
  checkb "tier violation is an error" true (errors_of r > 0)

let test_dcas_clean_in_dcas_tier () =
  let r =
    Checker.analyze_actions ~limits ~tier:Catalog.Dcas
      ~name:"fixture-tier-ok" tier_fixture
  in
  checki "same builder clean under the dcas tier" 0 (errors_of r)

let test_catalog_tier_names () =
  let cas = Catalog.names ~tier:Catalog.Cas () in
  let dcas = Catalog.names ~tier:Catalog.Dcas () in
  checkb "sundell is cas-tier" true (List.mem "sundell" cas);
  checkb "treiber is cas-tier" true (List.mem "treiber" cas);
  checkb "snark is dcas-tier" true (List.mem "snark" dcas);
  checkb "sundell not in dcas tier" false (List.mem "sundell" dcas);
  checki "tiers partition the catalog"
    (List.length (Catalog.names ()))
    (List.length cas + List.length dcas)

(* --- the cross-thread interference pass --- *)

(* A plain write to a value cell of an already-published (setup-anchored)
   object races with a concurrent instance of itself; the plain read in
   the second action races with that write across actions. Both must
   surface as racy-plain-access. *)
let test_flags_racy_plain_access () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-racy-plain"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let vcell = Heap.val_cell (Env.heap env) (O.get anchor) 0 in
        [
          ("racy_write", fun () -> O.write_val ctx vcell 7);
          ("racy_read", fun () -> ignore (O.read_val ctx vcell));
        ])
  in
  checkb "racy-plain-access flagged" true
    (has_class Absint.Racy_plain_access r);
  (* both the write and the read sides are reported *)
  checki "both accesses flagged" 2
    (List.length
       (List.filter
          (fun c -> c = Absint.Racy_plain_access)
          (classes_of r)))

(* Pre-publication initialization of a path-allocated object is private:
   the publishing CAS orders it before every later acquire, so the same
   plain write must NOT be flagged. The cas_val sibling shows the
   sanctioned way to touch a published value cell. *)
let test_private_init_not_racy () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-private-init"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let heap = Env.heap env in
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let acell = Heap.ptr_cell heap (O.get anchor) 0 in
        let vcell = Heap.val_cell heap (O.get anchor) 0 in
        [
          ( "init_then_publish",
            fun () ->
              let l = O.declare ctx in
              O.alloc ctx fixture_layout l;
              (* plain init of the fresh object: private *)
              O.write_val ctx (Heap.val_cell heap (O.get l) 0) 1;
              (* publish it, handing over the count *)
              O.store_alloc ctx acell l;
              O.retire ctx l );
          ("synced_touch", fun () -> ignore (O.cas_val ctx vcell 0 1));
        ])
  in
  checkb "private init not flagged" false
    (has_class Absint.Racy_plain_access r);
  checki "fixture clean" 0 (errors_of r)

(* --- a correct fixture stays clean --- *)

let test_clean_fixture_passes () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-clean"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        let anchor = O.declare ctx in
        O.alloc ctx fixture_layout anchor;
        let cell = Heap.ptr_cell (Env.heap env) (O.get anchor) 0 in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              O.load ctx cell l;
              (if O.get l <> Heap.null then
                 let m = O.declare ctx in
                 O.copy ctx m (O.get l);
                 O.retire ctx m);
              O.retire ctx l );
        ])
  in
  checki "clean fixture has no errors" 0 (errors_of r)

(* --- the gate: every shipped structure passes --- *)

let test_shipped_structures_clean () =
  let report =
    Checker.analyze_all ~limits:{ Checker.max_paths = 150; max_decisions = 40 }
      ()
  in
  List.iter
    (fun (s : Report.structure_report) ->
      checki
        (Printf.sprintf "%s: no errors" s.Report.structure)
        0
        (errors_of s);
      (* every action explored at least one completed path *)
      List.iter
        (fun (a : Report.action_report) ->
          checkb
            (Printf.sprintf "%s/%s completed paths > 0" s.Report.structure
               a.Report.action)
            true (a.Report.completed > 0))
        s.Report.actions)
    report.Report.structures;
  checki "all seven structures analyzed" 7
    (List.length report.Report.structures)

(* --- plumbing: JSON validity-ish and structure selection --- *)

let test_structure_selection () =
  (match Checker.analyze_structure ~limits "treiber" with
  | Ok r -> checki "one structure" 1 (List.length r.Report.structures)
  | Error e -> Alcotest.fail e);
  match Checker.analyze_structure ~limits "no-such-thing" with
  | Ok _ -> Alcotest.fail "expected an error for unknown structure"
  | Error _ -> ()

let test_json_render () =
  let r =
    Checker.analyze_actions ~limits ~name:"fixture-leak-json"
      (fun (module O : Lfrc_core.Ops_intf.OPS) env ->
        let ctx = O.make_ctx env in
        [
          ( "op",
            fun () ->
              let l = O.declare ctx in
              ignore (O.try_alloc ctx fixture_layout l) );
        ])
  in
  let t = { Report.structures = [ r ] } in
  let json = Report.to_json t in
  checkb "json nonempty" true (String.length json > 0);
  checkb "json has report tag" true
    (let sub = "\"report\":\"lfrc-analyze\"" in
     let n = String.length json and m = String.length sub in
     let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
     go 0);
  (* the try_alloc fixture leaks on the success path *)
  checkb "leak in json fixture" true (has_class Absint.Leak r)

let () =
  Alcotest.run "analysis"
    [
      ( "defect-classes",
        [
          Alcotest.test_case "leak" `Quick test_flags_leak;
          Alcotest.test_case "double-destroy" `Quick test_flags_double_destroy;
          Alcotest.test_case "use-after-retire" `Quick
            test_flags_use_after_retire;
          Alcotest.test_case "escaping-get" `Quick test_flags_escaping_get;
          Alcotest.test_case "unowned-store" `Quick test_flags_unowned_store;
          Alcotest.test_case "borrow-across-flush" `Quick
            test_flags_borrow_across_flush;
          Alcotest.test_case "weight-unbalanced" `Quick
            test_flags_weight_unbalanced;
          Alcotest.test_case "lfrc-bypass" `Quick test_flags_lfrc_bypass;
          Alcotest.test_case "dcas-in-cas-tier" `Quick
            test_flags_dcas_in_cas_tier;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "dcas clean under dcas tier" `Quick
            test_dcas_clean_in_dcas_tier;
          Alcotest.test_case "catalog tier names" `Quick
            test_catalog_tier_names;
        ] );
      ( "interference",
        [
          Alcotest.test_case "racy plain access flagged" `Quick
            test_flags_racy_plain_access;
          Alcotest.test_case "private init stays clean" `Quick
            test_private_init_not_racy;
        ] );
      ( "clean",
        [
          Alcotest.test_case "clean fixture passes" `Quick
            test_clean_fixture_passes;
          Alcotest.test_case "owned borrow spans flush" `Quick
            test_borrow_with_live_owner_spans_flush;
          Alcotest.test_case "balanced split stays clean" `Quick
            test_balanced_split_clean;
          Alcotest.test_case "all shipped structures pass" `Quick
            test_shipped_structures_clean;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "structure selection" `Quick
            test_structure_selection;
          Alcotest.test_case "json render" `Quick test_json_render;
        ] );
    ]
