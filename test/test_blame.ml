(* Tests for contention blame attribution: exact victim->culprit charging
   under the deterministic scheduler, determinism of the aggregates,
   interaction with deferred-rc coalescing and crash adoption, the
   metrics counter-identity guarantee, and the bench --compare gating
   policy (including the report-only grace for new histogram keys). *)

module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Dcas = Lfrc_atomics.Dcas
module Env = Lfrc_core.Env
module Metrics = Lfrc_obs.Metrics
module Tracer = Lfrc_obs.Tracer
module Profile = Lfrc_obs.Profile
module Blame = Lfrc_obs.Blame
module Obs = Lfrc_obs.Obs
module Json = Lfrc_util.Json
module Bc = Lfrc_harness.Bench_compare

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let treiber = List.assoc "treiber" Lfrc_harness.Common.workloads

(* One contended stack run with blame attached; fresh heap and env. *)
let run_treiber ?(blame = Blame.disabled) ?(metrics = Metrics.disabled)
    ?(rc_epoch = 0) ?(workers = 4) ?(ops = 200) ~seed () =
  let heap = Heap.create ~name:"blame-test" () in
  let env =
    Env.create ~dcas_impl:Dcas.Atomic_step
      ~rc_mode:(Env.rc_mode_of_epoch rc_epoch) ~metrics ~blame heap
  in
  ignore
    (Sched.run ~max_steps:100_000_000 (Strategy.Random seed) (fun () ->
         treiber ~workers ~ops_per_worker:ops ~seed env));
  env

(* --- exact attribution --- *)

(* Two threads, explicitly sequenced via join: the winner writes 42 under
   one site label, then the victim CASes against a stale expected value.
   Exactly one pair must exist and it must name both sites. *)
let test_known_winner_blamed () =
  let heap = Heap.create ~name:"blame-fixture" () in
  let cell = Heap.root heap ~name:"X" () in
  let d = Dcas.create Dcas.Atomic_step in
  let blame = Blame.create () in
  Dcas.attach_obs ~blame d ~metrics:Metrics.disabled ~tracer:Tracer.disabled;
  ignore
    (Sched.run ~max_steps:10_000 (Strategy.Random 1) (fun () ->
         let winner =
           Sched.spawn (fun () ->
               Blame.op_begin blame "winner.write";
               Dcas.write d cell 42;
               Blame.op_end blame)
         in
         Sched.join [ winner ];
         let victim =
           Sched.spawn (fun () ->
               Blame.op_begin blame "victim.cas";
               checkb "stale cas fails" false (Dcas.cas d cell 0 7);
               Blame.op_end blame)
         in
         Sched.join [ victim ]));
  match Blame.rows blame with
  | [ r ] ->
      checks "victim" "victim.cas" r.Blame.b_victim;
      checks "culprit" "winner.write" r.Blame.b_culprit;
      checki "one wasted attempt" 1 r.Blame.b_wasted;
      checki "not an rc cell" 0 r.Blame.b_rc;
      checkb "culprit kind is write" true
        (List.mem_assoc "write" r.Blame.b_kinds);
      checkb "staleness >= 0" true (r.Blame.b_steps >= 0);
      checki "nothing pending" 0 (Blame.pending blame)
  | rows ->
      Alcotest.failf "expected exactly one pair, got %d" (List.length rows)

(* A successful CAS must stamp, not charge. *)
let test_winning_cas_not_charged () =
  let heap = Heap.create ~name:"blame-win" () in
  let cell = Heap.root heap ~name:"X" () in
  let d = Dcas.create Dcas.Atomic_step in
  let blame = Blame.create () in
  Dcas.attach_obs ~blame d ~metrics:Metrics.disabled ~tracer:Tracer.disabled;
  ignore
    (Sched.run ~max_steps:10_000 (Strategy.Random 1) (fun () ->
         Blame.op_begin blame "solo.cas";
         checkb "cas wins" true (Dcas.cas d cell 0 1);
         checkb "cas wins again" true (Dcas.cas d cell 1 2);
         Blame.op_end blame));
  checki "no wasted attempts" 0 (Blame.total_wasted blame);
  checki "no pairs" 0 (List.length (Blame.rows blame))

(* --- determinism --- *)

let test_deterministic_aggregates () =
  let one () =
    let blame = Blame.create () in
    ignore (run_treiber ~blame ~seed:5 ());
    (Blame.to_json blame, Blame.matrix blame)
  in
  let j1, m1 = one () and j2, m2 = one () in
  checks "to_json byte-identical across runs" j1 j2;
  checks "matrix byte-identical across runs" m1 m2;
  checkb "the run actually contended" true (String.length m1 > 0)

(* --- blame totals tie out against the DCAS substrate --- *)

let test_totals_match_dcas_counters () =
  let blame = Blame.create () in
  let env = run_treiber ~blame ~seed:3 () in
  let c = Dcas.counters (Env.dcas env) in
  checki "every failed compare charged exactly once"
    (c.Dcas.cas_failures + c.Dcas.dcas_failures)
    (Blame.total_wasted blame);
  checkb "rc charges are a subset" true
    (Blame.rc_wasted blame <= Blame.total_wasted blame);
  checkb "stack contention reaches the rc cells" true
    (Blame.rc_wasted blame > 0);
  (match Blame.top_rc_pair blame with
  | Some (_, _, pct) -> checkb "top rc pair has a share" true (pct > 0.)
  | None -> Alcotest.fail "expected a top rc pair");
  checki "clean run leaves nothing pending" 0 (Blame.pending blame)

(* --- deferred-rc: parked deltas are not blamed at park --- *)

let test_deferred_park_not_blamed () =
  (* Single worker, epoch far beyond the op count: every count update
     parks, nothing contends, so defer traffic shows in metrics while
     blame stays empty — parked deltas are charged only when their flush
     CAS actually loses, never at park time. *)
  let blame = Blame.create () in
  let metrics = Metrics.create () in
  ignore
    (run_treiber ~blame ~metrics ~rc_epoch:1_000_000 ~workers:1 ~seed:2 ());
  let s = Metrics.snapshot metrics in
  checkb "deltas parked" true
    (Metrics.counter_value s "lfrc.defer_inc"
     + Metrics.counter_value s "lfrc.defer_dec"
     > 0);
  checki "uncontended run charges nothing" 0 (Blame.total_wasted blame);
  checki "no rc blame at park" 0 (Blame.rc_wasted blame)

let test_deferred_contended_still_ties_out () =
  let blame = Blame.create () in
  let env =
    run_treiber ~blame
      ~rc_epoch:Lfrc_harness.Scenario.deferred_rc_epoch ~seed:3 ()
  in
  let c = Dcas.counters (Env.dcas env) in
  checki "deferred mode: charges still one per failed compare"
    (c.Dcas.cas_failures + c.Dcas.dcas_failures)
    (Blame.total_wasted blame)

(* --- crash adoption: pending blame is folded in, not leaked --- *)

let test_chaos_adopts_pending () =
  let module Chaos = Lfrc_faults.Chaos in
  let module Fault_plan = Lfrc_faults.Fault_plan in
  let blame = Blame.create () in
  let crashed_runs = ref 0 in
  for seed = 1 to 5 do
    let spec = { Fault_plan.default with seed; crashes = [ (1, 10) ] } in
    let r =
      Chaos.run ~blame ~max_steps:400_000
        ~strategy:(Strategy.Random seed) ~spec (fun env ->
          match treiber ~workers:3 ~ops_per_worker:25 ~seed env with
          | () -> ()
          | exception Heap.Simulated_oom -> ())
    in
    (match r.Chaos.status with
    | Chaos.Completed { crashed; _ } when crashed <> [] -> incr crashed_runs
    | _ -> ());
    checki
      (Printf.sprintf "seed %d: nothing pending after the run" seed)
      0 (Blame.pending blame)
  done;
  checkb "some runs crashed a thread" true (!crashed_runs > 0);
  let frames, chains = Blame.adopted blame in
  checkb "crashed threads' open state was adopted" true (frames + chains > 0);
  (* Adoption is idempotent: the threads' state is gone afterwards. *)
  checki "re-adopt finds no frames" 0 (fst (Blame.adopt blame ~crashed:[ 1 ]));
  checki "re-adopt finds no chains" 0 (snd (Blame.adopt blame ~crashed:[ 1 ]))

(* --- counter identity: blame writes nothing to Metrics --- *)

let test_counter_identity () =
  let snap_with blame_on =
    let metrics = Metrics.create () in
    let blame = if blame_on then Blame.create () else Blame.disabled in
    ignore (run_treiber ~blame ~metrics ~seed:9 ());
    Metrics.to_json (Metrics.snapshot metrics)
  in
  checks "metrics snapshot byte-identical with blame on or off"
    (snap_with false) (snap_with true)

(* --- the Obs master switch --- *)

let test_obs_master_switch () =
  let o =
    Obs.create ~master:false ~metrics:true ~trace_capacity:64
      ~lineage_ring:16 ~profile:true ~blame:true ()
  in
  checkb "master off: metrics dead" false (Metrics.enabled o.Obs.metrics);
  checkb "master off: tracer dead" false (Tracer.enabled o.Obs.tracer);
  checkb "master off: profile dead" false (Profile.enabled o.Obs.profile);
  checkb "master off: blame dead" false (Blame.enabled o.Obs.blame);
  checkb "master off: bundle reports disabled" false (Obs.enabled o);
  let on = Obs.create ~blame:true () in
  checkb "defaults: metrics live" true (Metrics.enabled on.Obs.metrics);
  checkb "blame opt-in honored" true (Blame.enabled on.Obs.blame);
  checkb "trace stays opt-in" false (Tracer.enabled on.Obs.tracer)

(* --- bench --compare gating policy --- *)

let doc s =
  match Json.parse s with Ok d -> d | Error e -> Alcotest.fail e

let baseline_doc =
  doc
    {|{"workloads":[
        {"structure":"treiber","ops_per_sec":1000.0,
         "metrics":{"counters":{"dcas.cas_attempts":100},
                    "histograms":{"op.latency":{"n":50,"mean":1.0,"p99":3.0}}}}]}|}

let test_compare_new_histogram_report_only () =
  (* A current run that adds a histogram key (a new instrument) must be
     reported but not gated — the grace PR 7 gave new workloads and
     counters, extended to histograms. *)
  let current =
    doc
      {|{"workloads":[
          {"structure":"treiber","ops_per_sec":990.0,
           "metrics":{"counters":{"dcas.cas_attempts":100},
                      "histograms":{"op.latency":{"n":50,"mean":1.1,"p99":3.1},
                                    "rc.retry_burst":{"n":17,"mean":2.0}}}}]}|}
  in
  let v = Bc.diff ~threshold:30.0 ~current ~baseline:baseline_doc in
  checkb "still passes" true (Bc.ok v);
  checki "new histogram listed" 1 (List.length v.Bc.hist_new);
  let wl, key = List.hd v.Bc.hist_new in
  checks "workload" "treiber" wl;
  checks "key" "rc.retry_burst" key;
  checki "no histogram drift" 0 (List.length v.Bc.hist_drift);
  (* ...and the rendered report names it. *)
  let r =
    Bc.render ~threshold:30.0 ~current_file:"cur" ~baseline_file:"base" v
  in
  checkb "render mentions the new histogram" true
    (let a = "rc.retry_burst" in
     let la = String.length a and ls = String.length r in
     let rec go i = i + la <= ls && (String.sub r i la = a || go (i + 1)) in
     go 0)

let test_compare_histogram_n_drift_gates () =
  (* A matched histogram whose observation count moved >= 5% is behavior
     drift (the count is deterministic) and must gate. *)
  let current =
    doc
      {|{"workloads":[
          {"structure":"treiber","ops_per_sec":1000.0,
           "metrics":{"counters":{"dcas.cas_attempts":100},
                      "histograms":{"op.latency":{"n":70,"mean":1.0,"p99":3.0}}}}]}|}
  in
  let v = Bc.diff ~threshold:30.0 ~current ~baseline:baseline_doc in
  checkb "gates" false (Bc.ok v);
  checki "one histogram drift" 1 (List.length v.Bc.hist_drift);
  let d = List.hd v.Bc.hist_drift in
  checks "key" "op.latency" d.Bc.key;
  checkb "pct is +40%" true (Float.abs (d.Bc.pct -. 40.0) < 0.01)

let test_compare_counter_and_ops_policy () =
  let current =
    doc
      {|{"workloads":[
          {"structure":"treiber","ops_per_sec":600.0,
           "metrics":{"counters":{"dcas.cas_attempts":100,"lfrc.blame":7},
                      "histograms":{"op.latency":{"n":50,"mean":1.0,"p99":3.0}}}},
          {"structure":"msqueue","ops_per_sec":500.0,
           "metrics":{"counters":{"dcas.cas_attempts":10}}}]}|}
  in
  let v = Bc.diff ~threshold:30.0 ~current ~baseline:baseline_doc in
  checkb "ops/sec -40% gates at 30%" false (Bc.ok v);
  checki "one regression" 1 (List.length v.Bc.regressions);
  checki "new counter is report-only" 1 (List.length v.Bc.counter_new);
  checki "no counter drift" 0 (List.length v.Bc.counter_drift);
  checkb "new workload is report-only" true
    (List.exists (fun (r : Bc.row) -> r.Bc.name = "msqueue" && r.Bc.is_new)
       v.Bc.rows);
  (* The same diff at a 50% threshold passes. *)
  let v50 = Bc.diff ~threshold:50.0 ~current ~baseline:baseline_doc in
  checkb "wider threshold passes" true (Bc.ok v50);
  (* --explain on the regressed diff names the drifted pair source. *)
  let e = Bc.explain ~current ~baseline:baseline_doc v in
  checkb "explain names the regressed workload" true
    (let a = "treiber" in
     let la = String.length a and ls = String.length e in
     let rec go i = i + la <= ls && (String.sub e i la = a || go (i + 1)) in
     go 0)

let test_compare_vanished_counter_is_zero () =
  (* Registries only serialize non-zero series, so a mode that newly
     reports lfrc.rc_retry = 0 simply omits the key. The diff must read
     the omission as 0 on a matched key — a -100% drift on the baseline
     value — not as a missing instrument. *)
  let baseline =
    doc
      {|{"workloads":[
          {"structure":"treiber","ops_per_sec":1000.0,
           "metrics":{"counters":{"dcas.cas_attempts":100,"lfrc.rc_retry":40}}}]}|}
  in
  let current =
    doc
      {|{"workloads":[
          {"structure":"treiber","ops_per_sec":1000.0,
           "metrics":{"counters":{"dcas.cas_attempts":100}}}]}|}
  in
  let v = Bc.diff ~threshold:30.0 ~current ~baseline in
  checkb "vanished counter gates as drift" false (Bc.ok v);
  checki "exactly one counter drift" 1 (List.length v.Bc.counter_drift);
  let d = List.hd v.Bc.counter_drift in
  checks "key" "lfrc.rc_retry" d.Bc.key;
  checkb "current side compares as 0" true (d.Bc.cur = 0.);
  checkb "pct is -100%" true (Float.abs (d.Bc.pct +. 100.0) < 0.01);
  (* The matched, unchanged counter stays quiet, and nothing lands in the
     report-only new-counter bucket. *)
  checki "no new counters" 0 (List.length v.Bc.counter_new);
  (* Symmetric case: identical docs with an explicit zero on both sides
     stay green. *)
  let both_zero =
    doc
      {|{"workloads":[
          {"structure":"treiber","ops_per_sec":1000.0,
           "metrics":{"counters":{"dcas.cas_attempts":100,"lfrc.rc_retry":0}}}]}|}
  in
  let v0 = Bc.diff ~threshold:30.0 ~current ~baseline:both_zero in
  checkb "zero baseline never gates" true (Bc.ok v0)

(* --- tracer metadata: saved traces are self-describing --- *)

let test_tracer_meta_in_exports () =
  let t = Tracer.create ~capacity:16 in
  Tracer.set_meta t [ ("seed", "7"); ("rc_mode", "eager") ];
  ignore
    (Sched.run ~max_steps:1_000 (Strategy.Random 1) (fun () ->
         Tracer.emit t Tracer.Instant "tick"));
  let has affix s =
    let la = String.length affix and ls = String.length s in
    let rec go i = i + la <= ls && (String.sub s i la = affix || go (i + 1)) in
    go 0
  in
  let chrome = Tracer.to_chrome_json t in
  checkb "chrome header carries metadata object" true
    (has {|"metadata"|} chrome);
  checkb "chrome header carries the seed" true (has {|"seed":"7"|} chrome);
  let timeline = Tracer.to_timeline t in
  checkb "timeline footer carries the seed" true (has "meta seed=7" timeline);
  checkb "timeline footer carries rc_mode" true
    (has "meta rc_mode=eager" timeline)

let () =
  Alcotest.run "blame"
    [
      ( "attribution",
        [
          Alcotest.test_case "known winner blamed exactly" `Quick
            test_known_winner_blamed;
          Alcotest.test_case "winning cas not charged" `Quick
            test_winning_cas_not_charged;
          Alcotest.test_case "totals tie out vs dcas counters" `Quick
            test_totals_match_dcas_counters;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "aggregates byte-identical" `Quick
            test_deterministic_aggregates;
        ] );
      ( "deferred-rc",
        [
          Alcotest.test_case "parked deltas not blamed" `Quick
            test_deferred_park_not_blamed;
          Alcotest.test_case "contended deferred ties out" `Quick
            test_deferred_contended_still_ties_out;
        ] );
      ( "crash",
        [
          Alcotest.test_case "chaos adopts pending blame" `Quick
            test_chaos_adopts_pending;
        ] );
      ( "identity",
        [
          Alcotest.test_case "metrics identical with blame on/off" `Quick
            test_counter_identity;
          Alcotest.test_case "obs master switch" `Quick test_obs_master_switch;
        ] );
      ( "bench-compare",
        [
          Alcotest.test_case "new histogram is report-only" `Quick
            test_compare_new_histogram_report_only;
          Alcotest.test_case "histogram n drift gates" `Quick
            test_compare_histogram_n_drift_gates;
          Alcotest.test_case "counter/ops policy" `Quick
            test_compare_counter_and_ops_policy;
          Alcotest.test_case "vanished counter compares as 0" `Quick
            test_compare_vanished_counter_is_zero;
        ] );
      ( "tracer-meta",
        [
          Alcotest.test_case "exports are self-describing" `Quick
            test_tracer_meta_in_exports;
        ] );
    ]
