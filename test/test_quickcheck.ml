(* Property-based differential testing of every catalog structure against
   its sequential model, in all four rc modes.

   Each case draws a seeded operation sequence from Workload.opmix (the
   same generator the benchmarks use), maps it onto one structure family
   (stack / queue / deque / set), and replays it single-threaded against
   the concurrent implementation and the functional model side by side —
   once eagerly, once with deferred-rc coalescing at the harness epoch,
   once with a tiny epoch that forces a flush every few operations, and
   once on the wait-free weighted fast path.
   Any result mismatch, post-destroy leak, or unexpected raise fails the
   property; the failing sequence is then shrunk greedily (drop one
   operation at a time while the failure persists) before being reported,
   so the alcotest message carries a near-minimal reproducer.

   LFRC_QC_FULL=1 widens the sweep (more seeds, longer sequences) for
   nightly runs. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Report = Lfrc_simmem.Report
module Spec = Lfrc_structures.Spec
module Opmix = Lfrc_workload.Opmix
module Scenario = Lfrc_harness.Scenario

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Queue_ = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)
module Snark = Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops)
module Snark_fixed = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)
module Sundell = Lfrc_structures.Sundell_deque.Make (Lfrc_core.Lfrc_ops)
module Dset = Lfrc_structures.Dlist_set.Make (Lfrc_core.Lfrc_ops)
module Skipset = Lfrc_structures.Skiplist.As_set (Lfrc_core.Lfrc_ops)
module IntSet = Set.Make (Int)

let full = Sys.getenv_opt "LFRC_QC_FULL" = Some "1"
let seeds = if full then 50 else 10
let ops_len = if full then 400 else 120

type op = { kind : Opmix.kind; v : int }

let pp_op ppf { kind; v } = Format.fprintf ppf "%a %d" Opmix.pp_kind kind v

(* Values repeat (mod 24) so the set families exercise duplicate inserts
   and hits as well as misses. *)
let gen_ops ~seed n =
  let kinds = Opmix.stream Opmix.balanced_deque ~seed ~thread:0 n in
  Array.to_list
    (Array.mapi (fun i k -> { kind = k; v = ((seed * 37) + i) mod 24 }) kinds)

(* Each family runner replays one op list against implementation and
   model and returns [Error description] on the first divergence. The
   whole lifecycle runs per call so a shrunk candidate is a fresh
   deterministic execution. *)

let with_run name rc_mode f =
  let heap = Heap.create ~name () in
  let env =
    Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~rc_mode heap
  in
  match f env with
  | Error _ as e -> e
  | Ok () -> (
      match Report.assert_no_leaks heap with
      | () -> Ok ()
      | exception e -> Error ("post-destroy leak: " ^ Printexc.to_string e))
  | exception e -> Error ("raised: " ^ Printexc.to_string e)

let check i what got want err =
  if got <> want && !err = None then
    err :=
      Some
        (Printf.sprintf "op %d: %s returned %s, model says %s" i what
           (match got with Some v -> string_of_int v | None -> "empty")
           (match want with Some v -> string_of_int v | None -> "empty"))

let run_stack ~rc_mode ops =
  with_run "qc-stack" rc_mode @@ fun env ->
  let t = Stack.create env in
  let h = Stack.register t in
  let model = ref Spec.Stack.empty in
  let err = ref None in
  List.iteri
    (fun i { kind; v } ->
      if !err = None then
        match kind with
        | Opmix.Push_left | Opmix.Push_right ->
            Stack.push h v;
            model := Spec.Stack.push v !model
        | Opmix.Pop_left | Opmix.Pop_right ->
            let want =
              match Spec.Stack.pop !model with
              | None -> None
              | Some (v, m) ->
                  model := m;
                  Some v
            in
            check i "pop" (Stack.pop h) want err)
    ops;
  Stack.unregister h;
  Stack.destroy t;
  match !err with None -> Ok () | Some e -> Error e

let run_queue ~rc_mode ops =
  with_run "qc-queue" rc_mode @@ fun env ->
  let t = Queue_.create env in
  let h = Queue_.register t in
  let model = ref Spec.Queue.empty in
  let err = ref None in
  List.iteri
    (fun i { kind; v } ->
      if !err = None then
        match kind with
        | Opmix.Push_left | Opmix.Push_right ->
            Queue_.enqueue h v;
            model := Spec.Queue.enqueue v !model
        | Opmix.Pop_left | Opmix.Pop_right ->
            let want =
              match Spec.Queue.dequeue !model with
              | None -> None
              | Some (v, m) ->
                  model := m;
                  Some v
            in
            check i "dequeue" (Queue_.dequeue h) want err)
    ops;
  Queue_.unregister h;
  Queue_.destroy t;
  match !err with None -> Ok () | Some e -> Error e

let run_deque (module D : Lfrc_structures.Deque_intf.DEQUE) name ~rc_mode ops
    =
  with_run name rc_mode @@ fun env ->
  let t = D.create env in
  let h = D.register t in
  let model = ref Spec.Deque.empty in
  let err = ref None in
  List.iteri
    (fun i { kind; v } ->
      if !err = None then
        match kind with
        | Opmix.Push_left ->
            D.push_left h v;
            model := Spec.Deque.push_left v !model
        | Opmix.Push_right ->
            D.push_right h v;
            model := Spec.Deque.push_right v !model
        | Opmix.Pop_left ->
            let want =
              match Spec.Deque.pop_left !model with
              | None -> None
              | Some (v, m) ->
                  model := m;
                  Some v
            in
            check i "pop_left" (D.pop_left h) want err
        | Opmix.Pop_right ->
            let want =
              match Spec.Deque.pop_right !model with
              | None -> None
              | Some (v, m) ->
                  model := m;
                  Some v
            in
            check i "pop_right" (D.pop_right h) want err)
    ops;
  D.unregister h;
  D.destroy t;
  match !err with None -> Ok () | Some e -> Error e

(* Sets have no Structures.Spec model; the functional oracle is
   Set.Make(Int), as in test_extensions. The four kinds map to insert /
   contains / remove / contains so membership answers are checked on both
   the hit and miss sides; the final to_list must equal the model's
   sorted elements. *)
let run_set (module S : Lfrc_structures.Container_intf.SET) name ~rc_mode ops
    =
  with_run name rc_mode @@ fun env ->
  let t = S.create env in
  let h = S.register t in
  let model = ref IntSet.empty in
  let err = ref None in
  let checkb i what got want =
    if got <> want && !err = None then
      err :=
        Some
          (Printf.sprintf "op %d: %s returned %b, model says %b" i what got
             want)
  in
  List.iteri
    (fun i { kind; v } ->
      if !err = None then
        match kind with
        | Opmix.Push_left ->
            let want = not (IntSet.mem v !model) in
            model := IntSet.add v !model;
            checkb i (Printf.sprintf "insert %d" v) (S.insert h v) want
        | Opmix.Pop_left ->
            let want = IntSet.mem v !model in
            model := IntSet.remove v !model;
            checkb i (Printf.sprintf "remove %d" v) (S.remove h v) want
        | Opmix.Push_right | Opmix.Pop_right ->
            checkb i
              (Printf.sprintf "contains %d" v)
              (S.contains h v) (IntSet.mem v !model))
    ops;
  if !err = None then begin
    let got = S.to_list h and want = IntSet.elements !model in
    if got <> want then
      err :=
        Some
          (Printf.sprintf "final to_list [%s], model [%s]"
             (String.concat ";" (List.map string_of_int got))
             (String.concat ";" (List.map string_of_int want)))
  end;
  S.unregister h;
  S.destroy t;
  match !err with None -> Ok () | Some e -> Error e

let structures :
    (string * (rc_mode:Env.rc_mode -> op list -> (unit, string) result)) list =
  [
    ("treiber", run_stack);
    ("msqueue", run_queue);
    ("snark", run_deque (module Snark) "qc-snark");
    ("snark-fixed", run_deque (module Snark_fixed) "qc-snark-fixed");
    ("sundell", run_deque (module Sundell) "qc-sundell");
    ("dlist-set", run_set (module Dset) "qc-dlist-set");
    ("skiplist", run_set (module Skipset) "qc-skiplist");
  ]

(* Runs are deterministic, so a greedy shrink is sound: keep dropping the
   first droppable operation until no single removal still fails. O(n^2)
   executions, but only on a failing sequence. *)
let shrink run ops =
  let rec drop_one ops i =
    if i >= List.length ops then None
    else
      let cand = List.filteri (fun j _ -> j <> i) ops in
      match run cand with Error _ -> Some cand | Ok () -> drop_one ops (i + 1)
  in
  let rec fix ops =
    match drop_one ops 0 with Some cand -> fix cand | None -> ops
  in
  fix ops

let modes =
  [
    ("eager", Env.Eager);
    ("deferred", Env.Deferred_rc { epoch = Scenario.deferred_rc_epoch });
    (* A flush every few parks: short sequences still cross many epoch
       boundaries, so flush-time frees interleave with live operations. *)
    ("deferred-tiny", Env.Deferred_rc { epoch = 4 });
    (* The weighted fast path: splits, borrows and exhaustion refills
       must be observationally identical to the other modes. *)
    ("wait-free", Env.Wait_free { weight = Scenario.wait_free_weight });
  ]

let test_structure (name, runner) () =
  List.iter
    (fun (mode, rc_mode) ->
      for seed = 0 to seeds - 1 do
        let ops = gen_ops ~seed ops_len in
        match runner ~rc_mode ops with
        | Ok () -> ()
        | Error first ->
            let run ops =
              match runner ~rc_mode ops with
              | (Ok () | Error _) as r -> r
            in
            let small = shrink run ops in
            let why =
              match run small with Error e -> e | Ok () -> first
            in
            Alcotest.failf
              "%s/%s seed %d diverges: %s@.shrunk to %d ops: @[%a@]" name
              mode seed why (List.length small)
              (Format.pp_print_list ~pp_sep:(fun p () ->
                   Format.fprintf p ";@ ")
                 pp_op)
              small
      done)
    modes

(* Oracle sanity: a deliberately wrong pairing (stack implementation vs
   queue model) must fail and shrink to a near-minimal sequence. *)
let test_shrinker_catches_and_shrinks () =
  let broken ~rc_mode:_ ops =
    (* Treiber against the FIFO model: diverges as soon as two pushes
       precede a pop. *)
    let t = ref Spec.Queue.empty and s = ref Spec.Stack.empty in
    let err = ref None in
    List.iteri
      (fun i { kind; v } ->
        if !err = None then
          match kind with
          | Opmix.Push_left | Opmix.Push_right ->
              t := Spec.Queue.enqueue v !t;
              s := Spec.Stack.push v !s
          | Opmix.Pop_left | Opmix.Pop_right ->
              let got =
                match Spec.Stack.pop !s with
                | None -> None
                | Some (v, s') ->
                    s := s';
                    Some v
              in
              let want =
                match Spec.Queue.dequeue !t with
                | None -> None
                | Some (v, t') ->
                    t := t';
                    Some v
              in
              if got <> want then
                err := Some (Printf.sprintf "op %d: lifo/fifo divergence" i))
      ops;
    match !err with None -> Ok () | Some e -> Error e
  in
  let rec find_failing seed =
    if seed > 200 then Alcotest.fail "no failing sequence found"
    else
      let ops = gen_ops ~seed 60 in
      match broken ~rc_mode:Env.Eager ops with
      | Error _ -> ops
      | Ok () -> find_failing (seed + 1)
  in
  let ops = find_failing 0 in
  let small = shrink (broken ~rc_mode:Env.Eager) ops in
  (match broken ~rc_mode:Env.Eager small with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shrunk sequence no longer fails");
  (* Minimal divergence is push;push;pop — greedy must get there. *)
  Alcotest.(check int) "shrinks to the minimal case" 3 (List.length small)

let () =
  Alcotest.run "quickcheck-differential"
    (List.map
       (fun (name, runner) ->
         ( name,
           [
             Alcotest.test_case "4 rc modes vs model" `Slow
               (test_structure (name, runner));
           ] ))
       structures
    @ [
        ( "shrinker",
          [
            Alcotest.test_case "catches and minimizes" `Quick
              test_shrinker_catches_and_shrinks;
          ] );
      ])
