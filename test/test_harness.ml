(* Tests for the experiment harness: workload generators, the scenario
   engine, and the experiment registry. *)

module Opmix = Lfrc_workload.Opmix
module Scenario = Lfrc_harness.Scenario
module Experiments = Lfrc_harness.Experiments
module Strategy = Lfrc_sched.Strategy

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- Opmix --- *)

let test_stream_deterministic () =
  let a = Opmix.stream Opmix.balanced_deque ~seed:1 ~thread:0 100 in
  let b = Opmix.stream Opmix.balanced_deque ~seed:1 ~thread:0 100 in
  checkb "same stream" true (a = b)

let test_stream_thread_independent () =
  let a = Opmix.stream Opmix.balanced_deque ~seed:1 ~thread:0 100 in
  let b = Opmix.stream Opmix.balanced_deque ~seed:1 ~thread:1 100 in
  checkb "different threads differ" true (a <> b)

let test_stream_respects_weights () =
  let ops = Opmix.stream Opmix.right_only ~seed:3 ~thread:0 1_000 in
  checkb "only right ops" true
    (Array.for_all
       (fun k -> k = Opmix.Push_right || k = Opmix.Pop_right)
       ops);
  let pushes =
    Array.to_list ops |> List.filter (( = ) Opmix.Push_right) |> List.length
  in
  checkb "roughly balanced" true (pushes > 400 && pushes < 600)

let test_mix_rejects_bad_weights () =
  checkb "negative weight rejected" true
    (match Opmix.make [ (Opmix.Pop_left, -1) ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "empty mix rejected" true
    (match Opmix.make [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mix_names () =
  checkb "named" true (Opmix.name Opmix.balanced_deque = "balanced")

(* --- Scenario engine --- *)

module Fixed = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let test_scenario_sequential_linearizable () =
  let o =
    Scenario.run
      (module Fixed)
      ~preload:[ 1; 2; 3 ]
      ~threads:Scenario.[ [ Pop_left; Push_right 9 ] ]
      (Strategy.Round_robin)
  in
  checkb "ok" true o.Scenario.ok;
  checkb "history recorded" true (List.length o.Scenario.history >= 5)

let test_scenario_detects_bad_impl () =
  (* A deliberately broken deque: pop_left always says empty. The
     scenario engine must flag it. *)
  let module Broken : Lfrc_structures.Deque_intf.DEQUE = struct
    let name = "broken"

    type t = Fixed.t
    type handle = Fixed.handle

    let create = Fixed.create
    let register = Fixed.register
    let unregister = Fixed.unregister
    let push_left = Fixed.push_left
    let push_right = Fixed.push_right
    let try_push_left = Fixed.try_push_left
    let try_push_right = Fixed.try_push_right
    let pop_left h = ignore (Fixed.pop_left h); None
    let pop_right = Fixed.pop_right
    let destroy = Fixed.destroy
    let with_env = Fixed.with_env
  end in
  let o =
    Scenario.run
      (module Broken)
      ~preload:[ 1 ]
      ~threads:[ [ Scenario.Pop_left ] ]
      (Strategy.Round_robin)
  in
  checkb "broken implementation flagged" false o.Scenario.ok

let test_scenario_body_and_check () =
  let body, check =
    Scenario.body_and_check
      (module Fixed)
      ~preload:[ 1 ]
      ~threads:Scenario.[ [ Pop_right ]; [ Pop_left ] ]
      ()
  in
  (match
     Lfrc_sched.Explore.check ~max_schedules:2_000 ~body ~check ()
   with
  | Lfrc_sched.Explore.Ok { schedules } ->
      checkb "explored" true (schedules > 10)
  | Lfrc_sched.Explore.Budget_exhausted _ -> ()
  | Lfrc_sched.Explore.Violation { exn; _ } ->
      Alcotest.fail (Printexc.to_string exn))

(* --- Experiments registry --- *)

let test_registry_complete () =
  checki "eleven experiments" 11 (List.length Experiments.all);
  List.iter
    (fun id ->
      checkb (id ^ " registered") true (Experiments.find id <> None))
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11" ];
  checkb "case-insensitive" true (Experiments.find "e3" <> None);
  checkb "unknown rejected" true (Experiments.find "E99" = None)

let test_e7_runs_quickly () =
  (* E7 is the cheapest experiment: run it end to end as a smoke test of
     the harness plumbing. *)
  match Experiments.find "E7" with
  | None -> Alcotest.fail "E7 missing"
  | Some e ->
      let r = e.Experiments.run Scenario.default_config in
      let rendered = Lfrc_util.Table.render r.Lfrc_harness.Common.table in
      checkb "produced rows" true (String.length rendered > 100);
      checkb "metrics recorded" false
        (Lfrc_obs.Metrics.is_empty r.Lfrc_harness.Common.metrics)

let () =
  Alcotest.run "harness"
    [
      ( "opmix",
        [
          Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "thread independent" `Quick test_stream_thread_independent;
          Alcotest.test_case "weights" `Quick test_stream_respects_weights;
          Alcotest.test_case "bad weights" `Quick test_mix_rejects_bad_weights;
          Alcotest.test_case "names" `Quick test_mix_names;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "sequential linearizable" `Quick
            test_scenario_sequential_linearizable;
          Alcotest.test_case "detects bad impl" `Quick test_scenario_detects_bad_impl;
          Alcotest.test_case "body and check" `Slow test_scenario_body_and_check;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "E7 end to end" `Quick test_e7_runs_quickly;
        ] );
    ]
