(* Unit tests for the deferred-rc coalescing mode: parked deltas cancel
   without heap CASes, zero-detection fires at flush (and only at flush),
   the epoch budget forces a flush on buffer overflow, the pre-audit
   flush keeps crash forensics free of phantom leaks, and lifecycle
   histories recorded in deferred mode still replay under the paper's
   Figure 2 count semantics (the Rc events a flush emits carry the moves;
   Defer_inc/Defer_dec/Flush markers move nothing). *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Env = Lfrc_core.Env
module Lfrc = Lfrc_core.Lfrc
module Metrics = Lfrc_obs.Metrics
module Lineage = Lfrc_obs.Lineage
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Chaos = Lfrc_faults.Chaos
module Fault_plan = Lfrc_faults.Fault_plan
module Scenario = Lfrc_harness.Scenario
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let layout = Layout.make ~name:"deferred-node" ~n_ptrs:1 ~n_vals:1

let counter metrics key = Metrics.counter_value (Metrics.snapshot metrics) key

let fresh ?(rc_epoch = 1_024) name =
  let metrics = Metrics.create () in
  let heap = Heap.create ~name () in
  let env =
    Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~rc_mode:(Env.rc_mode_of_epoch rc_epoch) ~metrics heap
  in
  (env, heap, metrics)

(* --- flush-on-zero: frees happen at the flush, not before --- *)

let test_flush_on_zero () =
  let env, heap, metrics = fresh "deferred-zero" in
  let root = Heap.root heap ~name:"root" () in
  let p = Lfrc.alloc env layout in
  Lfrc.store env ~dst:root p;
  (* parks +1 on p *)
  Lfrc.destroy env p;
  (* parks -1 on p: nets to zero in the buffer, no heap CAS *)
  checki "defer_inc recorded" 1 (counter metrics "lfrc.defer_inc");
  checki "defer_dec recorded" 1 (counter metrics "lfrc.defer_dec");
  checki "no flush CAS from a cancelled pair" 0
    (counter metrics "lfrc.rc_flush_cas");
  checki "nothing freed while the root holds it" 0
    (counter metrics "heap.frees");
  Lfrc.store env ~dst:root Heap.null;
  (* the dropped reference parks; the object stays allocated ... *)
  checki "drop parked, not applied" 0 (counter metrics "heap.frees");
  (* ... until the flush nets it to zero and frees it. *)
  let freed = Lfrc.flush env in
  checki "flush reclaimed exactly the one object" 1 freed;
  checki "freed at flush" 1 (counter metrics "heap.frees");
  checkb "buffers empty after flush" true (Env.rc_parked env = []);
  Lfrc_simmem.Report.assert_no_leaks heap

(* --- transitive frees: a flush that zeroes a parent parks the
   children's decrements and keeps flushing until everything settles --- *)

let test_flush_frees_chain () =
  let env, heap, metrics = fresh "deferred-chain" in
  let root = Heap.root heap ~name:"root" () in
  (* Build a 5-node chain root -> n5 -> ... -> n1 through slot 0. Every
     node's parked +1 (stored into its parent) cancels against the -1
     from dropping the building thread's local, so the whole build costs
     zero count CASes. *)
  let chain = ref Heap.null in
  for _ = 1 to 5 do
    let p = Lfrc.alloc env layout in
    Lfrc.store env ~dst:(Heap.ptr_cell heap p 0) !chain;
    if !chain <> Heap.null then Lfrc.destroy env !chain;
    chain := p
  done;
  Lfrc.store env ~dst:root !chain;
  Lfrc.destroy env !chain;
  ignore (Lfrc.flush env);
  checki "nothing freed while the chain is reachable" 0
    (counter metrics "heap.frees");
  (* Cutting the root parks one decrement; the flush must cascade: each
     zeroed node parks its child's decrement for the next round. *)
  Lfrc.store env ~dst:root Heap.null;
  ignore (Lfrc.flush env);
  checki "flush cascaded through the whole chain" 5
    (counter metrics "heap.frees");
  Lfrc_simmem.Report.assert_no_leaks heap

(* --- epoch overflow: the budget forces a flush with no explicit call --- *)

let test_epoch_overflow_forces_flush () =
  let env, heap, metrics = fresh ~rc_epoch:4 "deferred-epoch" in
  let roots =
    List.init 6 (fun i -> Heap.root heap ~name:(Printf.sprintf "r%d" i) ())
  in
  List.iter
    (fun r ->
      let p = Lfrc.alloc env layout in
      Lfrc.store_alloc env ~dst:r p)
    roots;
  checki "store_alloc parks nothing" 0 (counter metrics "lfrc.defer_inc");
  checki "nothing freed yet" 0 (counter metrics "heap.frees");
  (* Each overwrite parks one decrement; the 4th park crosses the epoch
     and flushes without any explicit [Lfrc.flush]. *)
  List.iter (fun r -> Lfrc.store env ~dst:r Heap.null) roots;
  checkb "epoch flush fired" true (counter metrics "lfrc.rc_flush" >= 1);
  checkb "epoch flush freed parked objects" true
    (counter metrics "heap.frees" >= 4);
  ignore (Lfrc.flush env);
  checki "everything reclaimed" 6 (counter metrics "heap.frees");
  Lfrc_simmem.Report.assert_no_leaks heap

(* --- crash chaos: the pre-audit flush means the audit never sees a
   phantom leak from deltas still parked in (possibly dead) threads'
   buffers --- *)

let test_chaos_audit_clean_in_deferred_mode () =
  let specs =
    [
      ("none", fun seed -> { Fault_plan.default with seed });
      ( "crash",
        fun seed ->
          {
            Fault_plan.default with
            seed;
            crashes = [ (1 + (seed mod 3), 5 + (seed * 7 mod 120)) ];
          } );
    ]
  in
  List.iter
    (fun (wl_name, workload) ->
      List.iter
        (fun (f_name, spec_for) ->
          List.iter
            (fun seed ->
              let r =
                Chaos.run ~rc_epoch:Scenario.deferred_rc_epoch
                  ~max_steps:400_000 ~strategy:(Strategy.Random seed)
                  ~spec:(spec_for seed) (fun env ->
                    workload ~workers:3 ~ops_per_worker:25 ~seed env)
              in
              checkb
                (Printf.sprintf "%s/%s seed %d audits clean (repro %s)"
                   wl_name f_name seed r.Chaos.repro)
                true (Chaos.ok r);
              checkb
                (Printf.sprintf "%s/%s seed %d: buffers drained pre-audit"
                   wl_name f_name seed)
                true
                (Env.rc_parked r.Chaos.env = []))
            [ 1; 2; 3 ])
        specs)
    Lfrc_harness.Common.workloads

(* --- Figure 2 replay in deferred mode, the way test_lineage replays the
   eager run: complete histories open with the allocation, every Rc
   transition starts from the modeled count and never goes negative,
   frees happen only at zero — and the deferred machinery actually ran
   (defer markers and flush-attributed Rc events are present). --- *)

let test_figure2_replay_deferred () =
  let lineage = Lineage.create ~ring:256 () in
  let heap = Heap.create ~name:"deferred-figure2" () in
  let env =
    Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~rc_mode:(Env.Deferred_rc { epoch = Scenario.deferred_rc_epoch })
      ~lineage heap
  in
  ignore
    (Sched.run ~max_steps:2_000_000 (Strategy.Random 7) (fun () ->
         let t = Deque.create env in
         let workers =
           List.init 2 (fun w ->
               Sched.spawn (fun () ->
                   let h = Deque.register t in
                   for i = 1 to 6 do
                     (match Deque.try_push_right h ((10 * w) + i) with
                     | Ok () -> ignore (Deque.pop_left h)
                     | Error `Out_of_memory -> ());
                     match Deque.try_push_left h ((100 * w) + i) with
                     | Ok () -> ignore (Deque.pop_right h)
                     | Error `Out_of_memory -> ()
                   done;
                   Deque.unregister h))
         in
         Sched.join workers));
  let addrs = Lineage.tracked lineage in
  checkb "tracked some objects" true (List.length addrs > 2);
  let saw_defer = ref false and saw_flush = ref false in
  List.iter
    (fun addr ->
      let evs = Lineage.events lineage ~addr in
      let st =
        match Lineage.state lineage ~addr with
        | Some st -> st
        | None -> Alcotest.failf "addr %d tracked but stateless" addr
      in
      List.iter
        (fun (e : Lineage.event) ->
          match e.Lineage.kind with
          | Lineage.Defer_inc | Lineage.Defer_dec -> saw_defer := true
          | Lineage.Flush _ ->
              saw_flush := true;
              Alcotest.(check string)
                "flush events attributed to the flush" "lfrc.flush"
                e.Lineage.op
          | _ -> ())
        evs;
      if st.Lineage.st_events = List.length evs then begin
        (match evs with
        | { Lineage.kind = Lineage.Alloc _; _ } :: _ -> ()
        | _ ->
            Alcotest.failf "addr %d: complete history must open with alloc"
              addr);
        let rc = ref 0 in
        List.iter
          (fun (e : Lineage.event) ->
            match e.Lineage.kind with
            | Lineage.Alloc _ -> rc := 1
            | Lineage.Rc { old_rc; delta } ->
                checki
                  (Printf.sprintf "addr %d: transition starts at modeled rc"
                     addr)
                  !rc old_rc;
                checkb
                  (Printf.sprintf "addr %d: rc never negative" addr)
                  true
                  (old_rc + delta >= 0);
                rc := old_rc + delta
            | Lineage.Free _ ->
                checki (Printf.sprintf "addr %d: freed only at rc 0" addr) 0
                  !rc
            | Lineage.Retire | Lineage.Defer | Lineage.Defer_inc
            | Lineage.Defer_dec | Lineage.Flush _ | Lineage.Adopt _
            | Lineage.Wborrow | Lineage.Wshare ->
                ())
          evs
      end)
    addrs;
  checkb "deferred mode parked deltas" true !saw_defer;
  checkb "a flush applied netted deltas" true !saw_flush

(* --- the eager paths are untouched: with rc_epoch 0 the deferred
   counters stay at zero and destroy frees immediately --- *)

let test_eager_mode_unaffected () =
  let env, heap, metrics = fresh ~rc_epoch:0 "deferred-off" in
  checkb "rc_epoch 0 is eager" false (Env.rc_deferred env);
  let p = Lfrc.alloc env layout in
  Lfrc.destroy env p;
  checki "destroy freed immediately" 1 (counter metrics "heap.frees");
  checki "no parked increments" 0 (counter metrics "lfrc.defer_inc");
  checki "no parked decrements" 0 (counter metrics "lfrc.defer_dec");
  checki "no flushes" 0 (counter metrics "lfrc.rc_flush");
  Lfrc_simmem.Report.assert_no_leaks heap

let () =
  Alcotest.run "deferred-rc"
    [
      ( "flush",
        [
          Alcotest.test_case "flush-on-zero" `Quick test_flush_on_zero;
          Alcotest.test_case "cascading frees" `Quick test_flush_frees_chain;
          Alcotest.test_case "epoch overflow forces flush" `Quick
            test_epoch_overflow_forces_flush;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "audit clean under crash" `Quick
            test_chaos_audit_clean_in_deferred_mode;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "deferred histories replay" `Quick
            test_figure2_replay_deferred;
        ] );
      ( "eager",
        [
          Alcotest.test_case "rc_epoch 0 unchanged" `Quick
            test_eager_mode_unaffected;
        ] );
    ]
