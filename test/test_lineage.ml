(* Tests for the per-object lifecycle recorder: a full Snark push/pop
   cycle's recorded histories obey the paper's Figure 2 count semantics,
   a seeded fault-plan leak is attributed to the operation that dropped
   the last reference, and ring overflow is accounted without corrupting
   the retained tail. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Lineage = Lfrc_obs.Lineage
module Fault_plan = Lfrc_faults.Fault_plan
module Audit = Lfrc_faults.Audit
module Chaos = Lfrc_faults.Chaos
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* --- Figure 2 semantics over a full Snark push/pop cycle ---

   Every tracked object's retained history must replay as a legal count
   trajectory: born at 1 (LFRCDestroy frees at 0, so allocation hands
   out the first reference), never driven negative, freed only at 0.
   The chain check only applies to objects whose ring never wrapped —
   a wrapped ring retains a tail whose first event has earlier context. *)

let snark_cycle_body env =
  let t = Deque.create env in
  let workers =
    List.init 2 (fun w ->
        Sched.spawn (fun () ->
            let h = Deque.register t in
            for i = 1 to 6 do
              (match Deque.try_push_right h ((10 * w) + i) with
              | Ok () -> ignore (Deque.pop_left h)
              | Error `Out_of_memory -> ());
              match Deque.try_push_left h ((100 * w) + i) with
              | Ok () -> ignore (Deque.pop_right h)
              | Error `Out_of_memory -> ()
            done;
            Deque.unregister h))
  in
  Sched.join workers

let test_snark_cycle_figure2 () =
  let ring = 256 in
  let lineage = Lineage.create ~ring () in
  let heap = Heap.create ~name:"lineage-snark" () in
  let env =
    Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ~lineage heap
  in
  ignore
    (Sched.run ~max_steps:2_000_000 (Strategy.Random 7) (fun () ->
         snark_cycle_body env));
  let addrs = Lineage.tracked lineage in
  checkb "tracked some objects" true (List.length addrs > 2);
  checkb "recorded events" true (Lineage.recorded lineage > 0);
  List.iter
    (fun addr ->
      let evs = Lineage.events lineage ~addr in
      let st =
        match Lineage.state lineage ~addr with
        | Some st -> st
        | None -> Alcotest.failf "addr %d tracked but stateless" addr
      in
      (* Steps never decrease along a retained history. *)
      ignore
        (List.fold_left
           (fun prev (e : Lineage.event) ->
             checkb
               (Printf.sprintf "addr %d: steps monotone (%d >= %d)" addr
                  e.Lineage.step prev)
               true
               (e.Lineage.step >= prev);
             e.Lineage.step)
           0 evs);
      if st.Lineage.st_events = List.length evs then begin
        (* Complete history: replay it as Figure 2 would. *)
        (match evs with
        | { Lineage.kind = Lineage.Alloc _; _ } :: _ -> ()
        | _ -> Alcotest.failf "addr %d: complete history must open with alloc" addr);
        let rc = ref 0 in
        List.iter
          (fun (e : Lineage.event) ->
            match e.Lineage.kind with
            | Lineage.Alloc _ -> rc := 1
            | Lineage.Rc { old_rc; delta } ->
                checki
                  (Printf.sprintf "addr %d: transition starts at modeled rc"
                     addr)
                  !rc old_rc;
                checkb
                  (Printf.sprintf "addr %d: rc never negative" addr)
                  true
                  (old_rc + delta >= 0);
                rc := old_rc + delta
            | Lineage.Free _ ->
                checki
                  (Printf.sprintf "addr %d: freed only at rc 0" addr)
                  0 !rc
            | Lineage.Retire | Lineage.Defer | Lineage.Defer_inc
            | Lineage.Defer_dec | Lineage.Flush _ | Lineage.Adopt _
            | Lineage.Wborrow | Lineage.Wshare ->
                ())
          evs;
        (* Every count transition is attributed to an LFRC operation —
           the cycle never touches a count outside the instrumented API. *)
        List.iter
          (fun (e : Lineage.event) ->
            match e.Lineage.kind with
            | Lineage.Rc _ ->
                checkb
                  (Printf.sprintf "addr %d: rc event op %S is lfrc.*" addr
                     e.Lineage.op)
                  true
                  (starts_with "lfrc." e.Lineage.op)
            | _ -> ())
          evs
      end)
    addrs;
  (* The cycle pops everything it pushes: an object whose last recorded
     event is its free must have ended at rc 0. (An object freed and
     then recycled legitimately ends live at rc >= 1.) *)
  let ended_freed =
    List.filter
      (fun a ->
        match Lineage.last_event lineage ~addr:a with
        | Some { Lineage.kind = Lineage.Free _; _ } -> true
        | _ -> false)
      addrs
  in
  checkb "some nodes ended freed" true (List.length ended_freed > 0);
  List.iter
    (fun addr ->
      match Lineage.state lineage ~addr with
      | Some st ->
          checki (Printf.sprintf "addr %d: final rc" addr) 0 st.Lineage.st_rc
      | None -> ())
    ended_freed

(* --- Seeded leak attribution: crash a worker mid-run, join the audit's
   leaked ids against the lineage, and name the dropping operation.
   Same plan the CLI's [forensics --leaks] defaults to. --- *)

let test_seeded_leak_attributed () =
  let lineage = Lineage.create () in
  let spec = { Fault_plan.default with seed = 1; crashes = [ (2, 15) ] } in
  let r =
    Chaos.run ~lineage ~max_steps:400_000 ~strategy:(Strategy.Random 1) ~spec
      (fun env ->
        Lfrc_harness.Common.stack_workload ~workers:3 ~ops_per_worker:25
          ~seed:1 env)
  in
  (match r.Chaos.status with
  | Chaos.Completed { crashed = [ 2 ]; _ } -> ()
  | _ -> Alcotest.failf "expected a crashed completion (repro: %s)" r.Chaos.repro);
  let audit =
    match r.Chaos.audit with
    | Some a -> a
    | None -> Alcotest.fail "completed run must be audited"
  in
  checkb "crash leaked" true (audit.Audit.leaked > 0);
  checki "leaked_ids matches leaked count" audit.Audit.leaked
    (List.length audit.Audit.leaked_ids);
  let report = Lineage.leak_report lineage ~addrs:audit.Audit.leaked_ids in
  List.iter
    (fun id ->
      checkb
        (Printf.sprintf "report names leaked addr %d" id)
        true
        (contains report (Printf.sprintf "leak addr=%d" id)))
    audit.Audit.leaked_ids;
  (* The leaked objects' last recorded drops happened inside instrumented
     LFRC operations; the report must carry the attribution. *)
  checkb "report names the dropping op" true
    (contains report "dropped by op=lfrc.");
  List.iter
    (fun id ->
      match Lineage.last_drop lineage ~addr:id with
      | Some e ->
          checkb
            (Printf.sprintf "addr %d: drop attributed to lfrc.*" id)
            true
            (starts_with "lfrc." e.Lineage.op)
      | None -> ())
    audit.Audit.leaked_ids;
  (* Replaying the same seed reproduces the same attribution. *)
  let lineage' = Lineage.create () in
  let r' =
    Chaos.run ~lineage:lineage' ~max_steps:400_000
      ~strategy:(Strategy.Random 1) ~spec (fun env ->
        Lfrc_harness.Common.stack_workload ~workers:3 ~ops_per_worker:25
          ~seed:1 env)
  in
  (match r'.Chaos.audit with
  | Some a ->
      checkb "same leaked set" true
        (a.Audit.leaked_ids = audit.Audit.leaked_ids)
  | None -> Alcotest.fail "replay must be audited");
  checkb "same report" true
    (Lineage.leak_report lineage' ~addrs:audit.Audit.leaked_ids = report)

(* --- Ring overflow: drops are accounted globally, the retained tail is
   intact, and the timeline announces the truncation. --- *)

let test_ring_overflow_accounting () =
  let l = Lineage.create ~ring:4 () in
  Lineage.record l ~op:"test.alloc" ~addr:7 (Lineage.Alloc { gen = 1 });
  for i = 0 to 8 do
    Lineage.record_rc l ~op:"test.op" ~addr:7 ~old_rc:(i + 1)
      ~delta:(if i mod 2 = 0 then 1 else -1)
      ()
  done;
  checki "recorded counts every event" 10 (Lineage.recorded l);
  checki "dropped = recorded - ring" 6 (Lineage.dropped l);
  let evs = Lineage.events l ~addr:7 in
  checki "ring retains exactly 4" 4 (List.length evs);
  (* The retained tail is the last four records, uncorrupted. *)
  List.iteri
    (fun i (e : Lineage.event) ->
      match e.Lineage.kind with
      | Lineage.Rc { old_rc; _ } -> checki "tail old_rc" (6 + i) old_rc
      | _ -> Alcotest.fail "tail should be rc transitions")
    evs;
  (match Lineage.state l ~addr:7 with
  | Some st ->
      checki "st_events counts overwritten too" 10 st.Lineage.st_events
  | None -> Alcotest.fail "addr 7 must have state");
  checkb "timeline marks truncation" true
    (contains (Lineage.timeline l ~addr:7) "dropped");
  (* A second object's ring is independent: nothing dropped there. *)
  Lineage.record l ~addr:9 (Lineage.Alloc { gen = 1 });
  checki "addr 9 unaffected" 1 (List.length (Lineage.events l ~addr:9));
  checki "global drop count unchanged" 6 (Lineage.dropped l)

let test_disabled_is_noop () =
  let l = Lineage.disabled in
  checkb "disabled" false (Lineage.enabled l);
  Lineage.record l ~addr:1 (Lineage.Alloc { gen = 1 });
  Lineage.record_rc l ~addr:1 ~old_rc:1 ~delta:(-1) ();
  Lineage.op_begin l "x";
  Lineage.op_end l;
  checki "records nothing" 0 (Lineage.recorded l);
  checkb "tracks nothing" true (Lineage.tracked l = []);
  (* create with a non-positive ring is the disabled singleton. *)
  checkb "ring<=0 disables" false (Lineage.enabled (Lineage.create ~ring:0 ()))

let test_op_context_attribution () =
  let l = Lineage.create () in
  Lineage.op_begin l "outer";
  Lineage.op_begin l "inner";
  Lineage.record_rc l ~addr:3 ~old_rc:1 ~delta:1 ();
  Lineage.op_end l;
  Lineage.record_rc l ~addr:3 ~old_rc:2 ~delta:(-1) ();
  Lineage.op_end l;
  Lineage.record_rc l ~addr:3 ~old_rc:1 ~delta:(-1) ();
  match Lineage.events l ~addr:3 with
  | [ a; b; c ] ->
      Alcotest.(check string) "innermost wins" "inner" a.Lineage.op;
      Alcotest.(check string) "pops back to outer" "outer" b.Lineage.op;
      Alcotest.(check string) "outside any op" "?" c.Lineage.op
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let () =
  Alcotest.run "lineage"
    [
      ( "figure2",
        [
          Alcotest.test_case "snark cycle histories" `Quick
            test_snark_cycle_figure2;
        ] );
      ( "forensics",
        [
          Alcotest.test_case "seeded leak attributed" `Quick
            test_seeded_leak_attributed;
        ] );
      ( "ring",
        [
          Alcotest.test_case "overflow accounting" `Quick
            test_ring_overflow_accounting;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "op context" `Quick test_op_context_attribution;
        ] );
    ]
