(* Concurrent linearizability of the LFRC Treiber stack and Michael–Scott
   queue: randomized scheduling, full Wing–Gong checking against the
   sequential specs, plus bounded-exhaustive exploration of the smallest
   scenarios. The deque gets the same treatment in test_structures via the
   Scenario engine; stacks and queues have their own specs here. *)

module Heap = Lfrc_simmem.Heap
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module History = Lfrc_linearize.History
module Spec = Lfrc_structures.Spec

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Queue_ = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops)

let checkb = Alcotest.(check bool)

(* --- specs --- *)

module Stack_spec = struct
  type state = Spec.Stack.t
  type op = Push of int | Pop
  type res = Done | Popped of int option

  let init = Spec.Stack.empty

  let apply state = function
    | Push v -> (Spec.Stack.push v state, Done)
    | Pop -> (
        match Spec.Stack.pop state with
        | None -> (state, Popped None)
        | Some (v, state') -> (state', Popped (Some v)))

  let equal_res a b = a = b

  let pp_op ppf = function
    | Push v -> Format.fprintf ppf "push %d" v
    | Pop -> Format.fprintf ppf "pop"

  let pp_res ppf = function
    | Done -> Format.fprintf ppf "()"
    | Popped None -> Format.fprintf ppf "empty"
    | Popped (Some v) -> Format.fprintf ppf "%d" v
end

module Queue_spec = struct
  type state = Spec.Queue.t
  type op = Enq of int | Deq
  type res = Done | Got of int option

  let init = Spec.Queue.empty

  let apply state = function
    | Enq v -> (Spec.Queue.enqueue v state, Done)
    | Deq -> (
        match Spec.Queue.dequeue state with
        | None -> (state, Got None)
        | Some (v, state') -> (state', Got (Some v)))

  let equal_res a b = a = b

  let pp_op ppf = function
    | Enq v -> Format.fprintf ppf "enq %d" v
    | Deq -> Format.fprintf ppf "deq"

  let pp_res ppf = function
    | Done -> Format.fprintf ppf "()"
    | Got None -> Format.fprintf ppf "empty"
    | Got (Some v) -> Format.fprintf ppf "%d" v
end

module Stack_checker = Lfrc_linearize.Checker.Make (Stack_spec)
module Queue_checker = Lfrc_linearize.Checker.Make (Queue_spec)

(* --- generic scenario runner --- *)

let run_stack_scenario ?rc_mode ~preload ~threads strategy =
  let history = History.create () in
  let body () =
    let heap = Heap.create ~name:"lin-stack" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ?rc_mode heap in
    let s = Stack.create env in
    let h0 = Stack.register s in
    List.iter
      (fun v ->
        Stack.push h0 v;
        ignore
          (History.record history ~thread:0 (Stack_spec.Push v) (fun () ->
               Stack_spec.Done)))
      preload;
    let tids =
      List.mapi
        (fun i ops ->
          Sched.spawn (fun () ->
              let h = Stack.register s in
              List.iter
                (fun op ->
                  ignore
                    (History.record history ~thread:(i + 1) op (fun () ->
                         match op with
                         | Stack_spec.Push v ->
                             Stack.push h v;
                             Stack_spec.Done
                         | Stack_spec.Pop -> Stack_spec.Popped (Stack.pop h))))
                ops;
              Stack.unregister h))
        threads
    in
    Sched.join tids;
    (* drain joins the history so lost/duplicated values are caught *)
    let rec drain () =
      match
        History.record history ~thread:0 Stack_spec.Pop (fun () ->
            Stack_spec.Popped (Stack.pop h0))
      with
      | Stack_spec.Popped None -> ()
      | _ -> drain ()
    in
    drain ();
    Stack.unregister h0;
    Stack.destroy s;
    Lfrc_simmem.Report.assert_no_leaks heap
  in
  ignore (Sched.run ~max_steps:1_000_000 strategy body);
  match Stack_checker.check history with
  | Stack_checker.Linearizable _ -> true
  | Stack_checker.Not_linearizable -> false

let run_queue_scenario ?rc_mode ~preload ~threads strategy =
  let history = History.create () in
  let body () =
    let heap = Heap.create ~name:"lin-queue" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ?rc_mode heap in
    let q = Queue_.create env in
    let h0 = Queue_.register q in
    List.iter
      (fun v ->
        Queue_.enqueue h0 v;
        ignore
          (History.record history ~thread:0 (Queue_spec.Enq v) (fun () ->
               Queue_spec.Done)))
      preload;
    let tids =
      List.mapi
        (fun i ops ->
          Sched.spawn (fun () ->
              let h = Queue_.register q in
              List.iter
                (fun op ->
                  ignore
                    (History.record history ~thread:(i + 1) op (fun () ->
                         match op with
                         | Queue_spec.Enq v ->
                             Queue_.enqueue h v;
                             Queue_spec.Done
                         | Queue_spec.Deq -> Queue_spec.Got (Queue_.dequeue h))))
                ops;
              Queue_.unregister h))
        threads
    in
    Sched.join tids;
    let rec drain () =
      match
        History.record history ~thread:0 Queue_spec.Deq (fun () ->
            Queue_spec.Got (Queue_.dequeue h0))
      with
      | Queue_spec.Got None -> ()
      | _ -> drain ()
    in
    drain ();
    Queue_.unregister h0;
    Queue_.destroy q;
    Lfrc_simmem.Report.assert_no_leaks heap
  in
  ignore (Sched.run ~max_steps:1_000_000 strategy body);
  match Queue_checker.check history with
  | Queue_checker.Linearizable _ -> true
  | Queue_checker.Not_linearizable -> false

(* --- randomized sweeps ---

   Every sweep runs in all three count-delivery modes: eager, deferred-rc
   at the harness epoch, and the wait-free weighted fast path. *)

let rc_modes =
  [
    ("eager", None);
    ("deferred-64", Some (Env.Deferred_rc { epoch = 64 }));
    ("wait-free", Some (Env.Wait_free { weight = 64 }));
  ]

let test_stack_randomized () =
  let scenarios =
    Stack_spec.
      [
        ([ 1 ], [ [ Pop ]; [ Pop ]; [ Push 2 ] ]);
        ([], [ [ Push 1; Pop ]; [ Push 2; Pop ] ]);
        ([ 1; 2 ], [ [ Pop; Push 3 ]; [ Pop; Pop ] ]);
      ]
  in
  List.iter
    (fun (mode, rc_mode) ->
      List.iteri
        (fun i (preload, threads) ->
          for seed = 0 to 249 do
            if
              not
                (run_stack_scenario ?rc_mode ~preload ~threads
                   (Strategy.Random seed))
            then
              Alcotest.fail
                (Printf.sprintf "stack/%s scenario %d seed %d not linearizable"
                   mode i seed)
          done)
        scenarios)
    rc_modes

let test_queue_randomized () =
  let scenarios =
    Queue_spec.
      [
        ([ 1 ], [ [ Deq ]; [ Deq ]; [ Enq 2 ] ]);
        ([], [ [ Enq 1; Deq ]; [ Enq 2; Deq ] ]);
        ([ 1; 2 ], [ [ Deq; Enq 3 ]; [ Deq; Deq ] ]);
      ]
  in
  List.iter
    (fun (mode, rc_mode) ->
      List.iteri
        (fun i (preload, threads) ->
          for seed = 0 to 249 do
            if
              not
                (run_queue_scenario ?rc_mode ~preload ~threads
                   (Strategy.Random seed))
            then
              Alcotest.fail
                (Printf.sprintf "queue/%s scenario %d seed %d not linearizable"
                   mode i seed)
          done)
        scenarios)
    rc_modes

(* --- PCT sweeps on the smallest configurations (the strategy that found
   the published Snark's race) --- *)

let explore_ok name run =
  List.iter
    (fun (mode, rc_mode) ->
      for seed = 0 to 499 do
        if not (run ?rc_mode (Strategy.Pct { seed; change_points = 3 })) then
          Alcotest.fail
            (Printf.sprintf "%s/%s: PCT seed %d not linearizable" name mode
               seed)
      done)
    rc_modes

let test_stack_pct () =
  explore_ok "stack" (fun ?rc_mode strategy ->
      run_stack_scenario ?rc_mode ~preload:[ 1 ]
        ~threads:Stack_spec.[ [ Pop ]; [ Pop ]; [ Push 2 ] ]
        strategy)

let test_queue_pct () =
  explore_ok "queue" (fun ?rc_mode strategy ->
      run_queue_scenario ?rc_mode ~preload:[ 1 ]
        ~threads:Queue_spec.[ [ Deq ]; [ Deq ]; [ Enq 2 ] ]
        strategy)

(* --- a broken implementation must be caught (oracle sanity) --- *)

let test_oracle_catches_broken_stack () =
  (* A stack whose pop returns values twice under contention: simulate by
     recording a fabricated duplicate in the history. *)
  let history = History.create () in
  ignore
    (History.record history ~thread:0 (Stack_spec.Push 7) (fun () ->
         Stack_spec.Done));
  ignore
    (History.record history ~thread:1 Stack_spec.Pop (fun () ->
         Stack_spec.Popped (Some 7)));
  ignore
    (History.record history ~thread:2 Stack_spec.Pop (fun () ->
         Stack_spec.Popped (Some 7)));
  checkb "duplicate pop rejected" true
    (match Stack_checker.check history with
    | Stack_checker.Not_linearizable -> true
    | Stack_checker.Linearizable _ -> false)

let () =
  Alcotest.run "lin-stack-queue"
    [
      ( "stack",
        [
          Alcotest.test_case "randomized scenarios (3 rc modes)" `Slow test_stack_randomized;
          Alcotest.test_case "pct scenarios (3 rc modes)" `Slow test_stack_pct;
        ] );
      ( "queue",
        [
          Alcotest.test_case "randomized scenarios (3 rc modes)" `Slow test_queue_randomized;
          Alcotest.test_case "pct scenarios (3 rc modes)" `Slow test_queue_pct;
        ] );
      ( "oracle",
        [ Alcotest.test_case "catches broken" `Quick test_oracle_catches_broken_stack ] );
    ]
