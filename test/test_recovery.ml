(* Crash recovery and orphan adoption: the exhaustive sweeps assert that
   a run with [~recover:true] is leak-FREE — a strict audit with zero
   leaked objects after a crash at EVERY yield point — in the eager and
   deferred-rc count modes; plus targeted regressions for the crashed
   flusher, the crashed epoch pin, multi-crash plans, and MCAS
   descriptor adoption. *)

module Heap = Lfrc_simmem.Heap
module Cell = Lfrc_simmem.Cell
module Env = Lfrc_core.Env
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Fault_plan = Lfrc_faults.Fault_plan
module Audit = Lfrc_faults.Audit
module Chaos = Lfrc_faults.Chaos
module Recovery = Lfrc_faults.Recovery
module Metrics = Lfrc_obs.Metrics
module E11 = Lfrc_harness.E11_chaos
module Epoch = Lfrc_reclaim.Epoch
module Ebr_stack = Lfrc_reclaim.Ebr_stack
module Mcas = Lfrc_atomics.Mcas

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let assert_zero_leak ~label r =
  match r.Chaos.audit with
  | Some a when not r.Chaos.audit_advisory ->
      if not (Audit.ok a) || a.Audit.leaked <> 0 then
        Alcotest.failf "%s: strict audit not leak-free:@ %s (repro: %s)"
          label
          (Format.asprintf "%a" Audit.pp a)
          r.Chaos.repro
  | _ ->
      Alcotest.failf "%s: no authoritative audit (repro: %s)" label
        r.Chaos.repro

(* --- exhaustive crash sweeps: kill the victim at its n-th resume for
   n = 0, 1, 2, ... until the cycle outruns the crash, recovering and
   strict-auditing after every kill --- *)

let snark_cycle_body env =
  let t = Deque.create env in
  let worker =
    Sched.spawn (fun () ->
        let h = Deque.register t in
        (match Deque.try_push_right h 42 with
        | Ok () -> ignore (Deque.pop_left h)
        | Error `Out_of_memory -> ());
        Deque.unregister h)
  in
  Sched.join [ worker ]

let treiber_cycle_body env =
  let t = Stack.create env in
  let worker =
    Sched.spawn (fun () ->
        let h = Stack.register t in
        for i = 1 to 3 do
          Stack.push h i;
          ignore (Stack.pop h)
        done;
        Stack.unregister h)
  in
  Sched.join [ worker ]

let sweep_with_recovery ?(rc_epoch = 0) ~min_covered body =
  let strategy = Strategy.Round_robin in
  let rec sweep n covered =
    let spec = { Fault_plan.default with crashes = [ (1, n) ] } in
    let r =
      Chaos.run ~rc_epoch ~recover:true ~max_steps:100_000 ~strategy ~spec
        body
    in
    match r.Chaos.status with
    | Chaos.Completed { crashed = []; _ } ->
        (* The victim finished before resume [n]: sweep is complete. *)
        covered
    | Chaos.Completed { crashed = [ 1 ]; _ } ->
        let label = Printf.sprintf "crash at resume %d" n in
        (match r.Chaos.recovery with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: no recovery report" label);
        assert_zero_leak ~label r;
        sweep (n + 1) (covered + 1)
    | _ ->
        Alcotest.failf "crash at resume %d: unexpected outcome (repro: %s)" n
          r.Chaos.repro
  in
  let covered = sweep 0 0 in
  checkb
    (Printf.sprintf "swept %d yield points (want >= %d)" covered min_covered)
    true
    (covered >= min_covered)

let test_snark_sweep_leak_free () =
  sweep_with_recovery ~min_covered:20 snark_cycle_body

let test_treiber_deferred_sweep_leak_free () =
  sweep_with_recovery ~rc_epoch:4 ~min_covered:20 treiber_cycle_body

(* --- the E11 acceptance matrix: structures x (crash | multi-crash) x
   rc modes (eager / epoch-64 / epoch-4), every recovered run strictly
   leak-free --- *)

let test_matrix_leak_free_all_modes () =
  let faults =
    List.filter
      (fun f -> List.mem (E11.fault_name f) [ "crash"; "multi-crash" ])
      E11.fault_kinds
  in
  List.iter
    (fun structure ->
      List.iter
        (fun fault ->
          List.iter
            (fun rc_epoch ->
              List.iter
                (fun seed ->
                  let r =
                    E11.run_one ~rc_epoch ~recover:true ~structure ~fault
                      ~seed ()
                  in
                  let label =
                    Printf.sprintf "%s/%s rc_epoch=%d seed=%d"
                      (E11.structure_name structure)
                      (E11.fault_name fault) rc_epoch seed
                  in
                  match r.Chaos.status with
                  | Chaos.Completed _ -> assert_zero_leak ~label r
                  | _ ->
                      Alcotest.failf "%s: did not complete (repro: %s)" label
                        r.Chaos.repro)
                [ 1; 2 ])
            [ 0; 4; 64 ])
        faults)
    E11.structures

(* --- multi-crash plans: expressible, replayable, recoverable --- *)

let test_multi_crash_spec_roundtrip () =
  let spec =
    { Fault_plan.default with seed = 3; crashes = [ (1, 5); (2, 31) ] }
  in
  (match Fault_plan.spec_of_string (Fault_plan.spec_to_string spec) with
  | Some spec' -> checkb "multi-crash spec round-trips" true (spec' = spec)
  | None -> Alcotest.fail "multi-crash spec did not parse back");
  match
    Fault_plan.spec_of_string (Fault_plan.spec_to_string Fault_plan.default)
  with
  | Some spec' ->
      checkb "crash-free spec round-trips" true (spec' = Fault_plan.default)
  | None -> Alcotest.fail "default spec did not parse back"

let two_victims_body env =
  let t = Deque.create env in
  let spawn () =
    Sched.spawn (fun () ->
        let h = Deque.register t in
        for i = 1 to 6 do
          match Deque.try_push_right h i with
          | Ok () -> ignore (Deque.pop_left h)
          | Error `Out_of_memory -> ()
        done;
        Deque.unregister h)
  in
  let a = spawn () in
  let b = spawn () in
  Sched.join [ a; b ]

let test_multi_crash_recovers () =
  let spec = { Fault_plan.default with crashes = [ (1, 9); (2, 17) ] } in
  let r =
    Chaos.run ~recover:true ~max_steps:200_000 ~strategy:Strategy.Round_robin
      ~spec two_victims_body
  in
  (match r.Chaos.status with
  | Chaos.Completed { crashed; _ } ->
      checkb "both victims crashed" true
        (List.sort compare crashed = [ 1; 2 ])
  | _ -> Alcotest.failf "unexpected outcome (repro: %s)" r.Chaos.repro);
  assert_zero_leak ~label:"multi-crash" r;
  match r.Chaos.recovery with
  | Some rep ->
      checki "recovery saw both owners" 2 (List.length rep.Recovery.crashed)
  | None -> Alcotest.fail "no recovery report"

(* --- a crashed flusher's staged deltas are re-parked, not lost --- *)

let test_crashed_flusher_restaged () =
  let heap = Heap.create ~name:"rec-flush" () in
  let env =
    Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step
      ~rc_mode:(Env.Deferred_rc { epoch = 64 }) heap
  in
  ignore (Env.rc_park env ~addr:7 ~delta:1);
  ignore (Env.rc_park env ~addr:9 ~delta:(-1));
  checkb "flush flag taken" true (Env.rc_try_begin_flush env);
  checkb "deltas staged" true (Env.rc_drain_into_applying env);
  checkb "buffers empty while staged" true (Env.rc_parked env = []);
  (* a LIVE flusher's staging is left alone *)
  checki "live flusher keeps its staging" 0
    (Env.rc_recover_flush env ~crashed:[ 5 ]);
  (* the flag owner (tid 0 outside a simulation) crashing re-parks both
     entries and clears the flag *)
  checki "two stranded entries re-parked" 2
    (Env.rc_recover_flush env ~crashed:[ 0 ]);
  checkb "parked again under the dead owner" true
    (List.sort compare (Env.rc_parked env) = [ 7; 9 ]);
  checkb "flush flag reusable" true (Env.rc_try_begin_flush env);
  Env.rc_end_flush env

(* --- regression: a crashed thread pinning an epoch no longer blocks
   reclamation once recovery evicts its slot --- *)

let test_crashed_pin_no_longer_blocks () =
  let rec attempt n =
    if n > 200 then
      Alcotest.fail "no crash landed while the victim held an epoch pin"
    else begin
      let heap = Heap.create ~name:"rec-ebr" () in
      let metrics = Metrics.create () in
      let env =
        Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ~metrics heap
      in
      let stack = ref None in
      let resumes = ref 0 in
      let outcome =
        Sched.run ~max_steps:200_000
          ~inject_crash:(fun ~tid ~step:_ ->
            tid = 1
            &&
            (incr resumes;
             !resumes - 1 = n))
          Strategy.Round_robin
          (fun () ->
            let t = Ebr_stack.create env in
            stack := Some t;
            let work () =
              let h = Ebr_stack.register t in
              for i = 1 to 8 do
                Ebr_stack.push h i;
                ignore (Ebr_stack.pop h)
              done;
              Ebr_stack.unregister h
            in
            let victim = Sched.spawn work in
            let worker = Sched.spawn work in
            Sched.join [ victim; worker ])
      in
      let e = Ebr_stack.epoch (Option.get !stack) in
      (* A pin at the current epoch still permits one advance; a dead
         pinned thread is the slot that blocks the SECOND one, forever. *)
      let advance_twice () = Epoch.try_advance e && Epoch.try_advance e in
      if outcome.Sched.crashed = [ 1 ] && not (advance_twice ()) then begin
        (* The dead thread died pinned: without eviction the epoch is
           stuck here forever and limbo nodes never free. *)
        checkb "recovery hook evicts the pinned slot" true
          (Env.run_recovery_hooks env ~crashed:[ 1 ] >= 1);
        checkb "epoch advances freely again" true (advance_twice ());
        checkb "eviction metered" true
          (Metrics.counter_value (Metrics.snapshot metrics) "lfrc.epoch_evict"
          >= 1)
      end
      else attempt (n + 1)
    end
  in
  attempt 0

(* --- MCAS descriptor adoption: crash the operation at every yield
   point; after [adopt_slot] both cells hold plain values and the
   operation is all-or-nothing --- *)

let test_mcas_descriptor_adopted () =
  let rec attempt n covered =
    if n > 300 then covered
    else begin
      let a = Cell.make 0 and b = Cell.make 0 in
      let resumes = ref 0 in
      let outcome =
        Sched.run ~max_steps:50_000
          ~inject_crash:(fun ~tid ~step:_ ->
            tid = 1
            &&
            (incr resumes;
             !resumes - 1 = n))
          Strategy.Round_robin
          (fun () ->
            let w =
              Sched.spawn (fun () ->
                  ignore (Mcas.mcas [| (a, 0, 1); (b, 0, 1) |]))
            in
            Sched.join [ w ])
      in
      if outcome.Sched.crashed = [] then covered
      else begin
        ignore (Mcas.adopt_slot 1);
        let plain c = Cell.tag_of_raw (Atomic.get (Cell.raw c)) = 0 in
        checkb
          (Printf.sprintf "crash at resume %d: no descriptor left behind" n)
          true
          (plain a && plain b);
        let va = Mcas.read a and vb = Mcas.read b in
        checkb
          (Printf.sprintf "crash at resume %d: all-or-nothing (got %d,%d)" n
             va vb)
          true
          ((va, vb) = (0, 0) || (va, vb) = (1, 1));
        attempt (n + 1) (covered + 1)
      end
    end
  in
  let covered = attempt 0 0 in
  checkb
    (Printf.sprintf "swept %d mcas yield points (want >= 3)" covered)
    true (covered >= 3)

let () =
  Alcotest.run "recovery"
    [
      ( "sweeps",
        [
          Alcotest.test_case "snark eager leak-free" `Quick
            test_snark_sweep_leak_free;
          Alcotest.test_case "treiber deferred-rc(4) leak-free" `Quick
            test_treiber_deferred_sweep_leak_free;
          Alcotest.test_case "E11 matrix all rc modes" `Quick
            test_matrix_leak_free_all_modes;
        ] );
      ( "multi-crash",
        [
          Alcotest.test_case "spec round-trip" `Quick
            test_multi_crash_spec_roundtrip;
          Alcotest.test_case "two victims recovered" `Quick
            test_multi_crash_recovers;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "crashed flusher restaged" `Quick
            test_crashed_flusher_restaged;
          Alcotest.test_case "crashed epoch pin evicted" `Quick
            test_crashed_pin_no_longer_blocks;
          Alcotest.test_case "mcas descriptors adopted" `Quick
            test_mcas_descriptor_adopted;
        ] );
    ]
