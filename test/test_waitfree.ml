(* The wait-free weighted-rc fast path: pouch and slot weight-table
   semantics, the retry-free property under contention (with an eager
   control run on the same seed), exhaustion fallback at tiny batch
   weights, zero-detect exactness under racing drops, and the exhaustive
   crash sweeps — every yield point, recovered and strict-audited
   leak-FREE, in the wait-free mode (mirroring test_recovery's eager and
   deferred sweeps). *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Env = Lfrc_core.Env
module Lfrc = Lfrc_core.Lfrc
module Dcas = Lfrc_atomics.Dcas
module Sched = Lfrc_sched.Sched
module Strategy = Lfrc_sched.Strategy
module Metrics = Lfrc_obs.Metrics
module Fault_plan = Lfrc_faults.Fault_plan
module Audit = Lfrc_faults.Audit
module Chaos = Lfrc_faults.Chaos
module E11 = Lfrc_harness.E11_chaos

module Stack = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops)
module Deque = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let counter s key = Metrics.counter_value s key

(* --- the weight side tables, unit-level --- *)

let wf_env ?(weight = 64) name =
  let heap = Heap.create ~name () in
  ( heap,
    Env.create ~dcas_impl:Dcas.Atomic_step
      ~rc_mode:(Env.Wait_free { weight })
      heap )

let test_pouch_semantics () =
  let _heap, env = wf_env "wf-pouch" in
  checkb "wf mode on" true (Env.wf_on env);
  checki "batch weight" 64 (Env.wf_weight env);
  checki "absent entry carries implicit weight 1" 1
    (Env.wf_pool_weight env ~addr:7);
  checkb "share without an entry fails" false
    (Env.wf_pool_try_share env ~addr:7);
  Env.wf_pool_add env ~addr:7 ~w:3 ~n:1;
  checki "pooled weight visible" 3 (Env.wf_pool_weight env ~addr:7);
  (* (w=3,n=1): two copies can ride the pool, the third cannot. *)
  checkb "spare weight covers a copy" true (Env.wf_pool_try_share env ~addr:7);
  checkb "and one more" true (Env.wf_pool_try_share env ~addr:7);
  checkb "exhausted pool refuses (w = n)" false
    (Env.wf_pool_try_share env ~addr:7);
  (* destroy fast path undoes a covered ref without touching the heap *)
  checkb "drop-shared while n > 1" true
    (Env.wf_pool_try_drop_shared env ~addr:7);
  (* returning unspent publication weight merges without covering *)
  checkb "give merges into the existing entry" true
    (Env.wf_pool_give env ~addr:7 ~w:5);
  checkb "the merged weight covers a new copy" true
    (Env.wf_pool_try_share env ~addr:7);
  checkb "give with no entry fails" false (Env.wf_pool_give env ~addr:9 ~w:2);
  (* (w=8,n=3): a handoff leaves with weight 1 while refs remain *)
  checki "transfer takes 1 while other refs remain" 1
    (Env.wf_pool_take_for_transfer env ~addr:7);
  checkb "drop back down to one covered ref" true
    (Env.wf_pool_try_drop_shared env ~addr:7);
  checkb "the last covered ref cannot drop-share" false
    (Env.wf_pool_try_drop_shared env ~addr:7);
  (* (w=7,n=1): the last transfer surrenders the whole pool *)
  checki "last transfer surrenders the pool" 7
    (Env.wf_pool_take_for_transfer env ~addr:7);
  checki "entry gone (back to implicit 1)" 1 (Env.wf_pool_weight env ~addr:7)

let test_slot_semantics () =
  let heap, env = wf_env "wf-slot" in
  let cell = Heap.root heap ~name:"slot" () in
  checki "untracked slot carries weight 1" 1 (Env.wf_slot_take env ~cell);
  Env.wf_slot_set env ~cell ~w:3;
  (* borrow-on-handoff: take 1 while at least 1 remains *)
  checkb "borrow from w=3" true (Env.wf_slot_try_borrow env ~cell);
  checkb "borrow from w=2" true (Env.wf_slot_try_borrow env ~cell);
  checkb "exhausted slot (w=1) refuses a borrow" false
    (Env.wf_slot_try_borrow env ~cell);
  (* load's exhaustion refill deposits a fresh batch on the slot *)
  Env.wf_slot_give env ~cell ~w:4;
  checki "take returns the refilled weight" 5 (Env.wf_slot_take env ~cell);
  checki "take leaves the slot untracked" 1 (Env.wf_slot_take env ~cell)

(* --- contended behavior: retry-free, borrows, exhaustion --- *)

let contended_stack_run ~rc_mode ~seed ~metrics ~workers ~ops =
  let heap = Heap.create ~name:"wf-stack" () in
  let env = Env.create ~dcas_impl:Dcas.Atomic_step ~rc_mode ~metrics heap in
  ignore
    (Sched.run ~max_steps:10_000_000 (Strategy.Random seed) (fun () ->
         let t = Stack.create env in
         let tids =
           List.init workers (fun w ->
               Sched.spawn (fun () ->
                   let h = Stack.register t in
                   for i = 1 to ops do
                     if (i + w) mod 3 < 2 then Stack.push h ((w * 1000) + i)
                     else ignore (Stack.pop h)
                   done;
                   Stack.unregister h))
         in
         Sched.join tids;
         Stack.destroy t));
  Lfrc_simmem.Report.assert_no_leaks heap;
  Metrics.snapshot metrics

let test_rc_retry_zero_under_contention () =
  let s =
    contended_stack_run
      ~rc_mode:(Env.Wait_free { weight = 64 })
      ~seed:3
      ~metrics:(Metrics.create ())
      ~workers:3 ~ops:150
  in
  (* The headline property: count delivery never retries — copy/destroy
     are single fetch-adds. *)
  checki "lfrc.rc_retry is exactly zero" 0 (counter s "lfrc.rc_retry");
  checkb "count updates went through fetch-add" true (counter s "dcas.rmw" > 0);
  checkb "handoffs borrowed slot weight" true
    (counter s "lfrc.weight_borrow" > 0);
  (* Control: the same workload and seed under eager counts DOES retry,
     so the zero above is the mode, not the workload. *)
  let e =
    contended_stack_run ~rc_mode:Env.Eager ~seed:3
      ~metrics:(Metrics.create ())
      ~workers:3 ~ops:150
  in
  checkb "eager control run retries" true (counter e "lfrc.rc_retry" > 0)

let test_exhaustion_at_tiny_weights () =
  List.iter
    (fun weight ->
      let s =
        contended_stack_run
          ~rc_mode:(Env.Wait_free { weight })
          ~seed:7
          ~metrics:(Metrics.create ())
          ~workers:3 ~ops:400
      in
      checkb
        (Printf.sprintf "weight=%d: exhaustion fallback taken" weight)
        true
        (counter s "lfrc.weight_exhaust" > 0);
      (* Fallback DCAS retries are load retries, never rc retries. *)
      checki
        (Printf.sprintf "weight=%d: still retry-free on the count" weight)
        0 (counter s "lfrc.rc_retry"))
    [ 2; 3; 4 ]

(* --- zero-detect is exact under racing drops: tiny weights force every
   thread through the count word while a dropper clears the root --- *)

let test_zero_detect_racing_drops () =
  for seed = 1 to 8 do
    let metrics = Metrics.create () in
    let heap = Heap.create ~name:"wf-zero" () in
    let env =
      Env.create ~dcas_impl:Dcas.Atomic_step
        ~rc_mode:(Env.Wait_free { weight = 2 })
        ~metrics heap
    in
    let layout = Layout.make ~name:"wf-zero-node" ~n_ptrs:1 ~n_vals:1 in
    ignore
      (Sched.run ~max_steps:2_000_000 (Strategy.Random seed) (fun () ->
           let root = Heap.root heap ~name:"shared" () in
           let p = Lfrc.alloc env layout in
           Lfrc.store_alloc env ~dst:root p;
           let readers =
             List.init 4 (fun _ ->
                 Sched.spawn (fun () ->
                     let dest = ref Heap.null in
                     for _ = 1 to 20 do
                       Lfrc.load env ~src:root ~dest;
                       let d2 = ref Heap.null in
                       Lfrc.copy env ~dest:d2 !dest;
                       Lfrc.destroy env !d2
                     done;
                     Lfrc.destroy env !dest))
           in
           let dropper =
             Sched.spawn (fun () -> Lfrc.store env ~dst:root Heap.null)
           in
           Sched.join (dropper :: readers)));
    (* One allocation, racing splits/borrows/drops — freed exactly once,
       exactly when the last weight left. A double free raises inside the
       run; a missed zero-detect leaks here. *)
    Lfrc_simmem.Report.assert_no_leaks heap;
    let s = Metrics.snapshot metrics in
    checki
      (Printf.sprintf "seed %d: every alloc freed exactly once" seed)
      (counter s "heap.allocs") (counter s "heap.frees")
  done

(* --- exhaustive crash sweeps, wait-free: crash at EVERY yield point,
   recover, strict audit, zero leaks (test_recovery's bodies) --- *)

let assert_zero_leak ~label r =
  match r.Chaos.audit with
  | Some a when not r.Chaos.audit_advisory ->
      if not (Audit.ok a) || a.Audit.leaked <> 0 then
        Alcotest.failf "%s: strict audit not leak-free:@ %s (repro: %s)" label
          (Format.asprintf "%a" Audit.pp a)
          r.Chaos.repro
  | _ ->
      Alcotest.failf "%s: no authoritative audit (repro: %s)" label
        r.Chaos.repro

let snark_cycle_body env =
  let t = Deque.create env in
  let worker =
    Sched.spawn (fun () ->
        let h = Deque.register t in
        (match Deque.try_push_right h 42 with
        | Ok () -> ignore (Deque.pop_left h)
        | Error `Out_of_memory -> ());
        Deque.unregister h)
  in
  Sched.join [ worker ]

let treiber_cycle_body env =
  let t = Stack.create env in
  let worker =
    Sched.spawn (fun () ->
        let h = Stack.register t in
        for i = 1 to 3 do
          Stack.push h i;
          ignore (Stack.pop h)
        done;
        Stack.unregister h)
  in
  Sched.join [ worker ]

let sweep_with_recovery ~weight ~min_covered body =
  let strategy = Strategy.Round_robin in
  let rec sweep n covered =
    let spec = { Fault_plan.default with crashes = [ (1, n) ] } in
    let r =
      Chaos.run
        ~rc_mode:(Env.Wait_free { weight })
        ~recover:true ~max_steps:100_000 ~strategy ~spec body
    in
    match r.Chaos.status with
    | Chaos.Completed { crashed = []; _ } -> covered
    | Chaos.Completed { crashed = [ 1 ]; _ } ->
        let label = Printf.sprintf "weight=%d crash at resume %d" weight n in
        (match r.Chaos.recovery with
        | Some _ -> ()
        | None -> Alcotest.failf "%s: no recovery report" label);
        assert_zero_leak ~label r;
        sweep (n + 1) (covered + 1)
    | _ ->
        Alcotest.failf "crash at resume %d: unexpected outcome (repro: %s)" n
          r.Chaos.repro
  in
  let covered = sweep 0 0 in
  checkb
    (Printf.sprintf "swept %d yield points (want >= %d)" covered min_covered)
    true
    (covered >= min_covered)

let test_snark_sweep_leak_free () =
  sweep_with_recovery ~weight:64 ~min_covered:20 snark_cycle_body

(* Tiny batch weight: the sweep also crosses in-flight exhaustion refills
   and weight handoffs, and recovery must adopt those too. *)
let test_treiber_tiny_weight_sweep_leak_free () =
  sweep_with_recovery ~weight:2 ~min_covered:20 treiber_cycle_body

(* --- the E11 acceptance matrix in wait-free mode: every structure,
   crash and multi-crash, strictly leak-free after recovery --- *)

let test_matrix_leak_free_wait_free () =
  let faults =
    List.filter
      (fun f -> List.mem (E11.fault_name f) [ "crash"; "multi-crash" ])
      E11.fault_kinds
  in
  List.iter
    (fun structure ->
      List.iter
        (fun fault ->
          List.iter
            (fun seed ->
              let r =
                E11.run_one
                  ~rc_mode:(Env.Wait_free { weight = 64 })
                  ~recover:true ~structure ~fault ~seed ()
              in
              let label =
                Printf.sprintf "%s/%s wait-free seed=%d"
                  (E11.structure_name structure)
                  (E11.fault_name fault) seed
              in
              match r.Chaos.status with
              | Chaos.Completed _ -> assert_zero_leak ~label r
              | _ ->
                  Alcotest.failf "%s: did not complete (repro: %s)" label
                    r.Chaos.repro)
            [ 1; 2 ])
        faults)
    E11.structures

let () =
  Alcotest.run "waitfree"
    [
      ( "weight-tables",
        [
          Alcotest.test_case "pouch semantics" `Quick test_pouch_semantics;
          Alcotest.test_case "slot semantics" `Quick test_slot_semantics;
        ] );
      ( "contention",
        [
          Alcotest.test_case "rc_retry exactly zero" `Quick
            test_rc_retry_zero_under_contention;
          Alcotest.test_case "exhaustion at tiny weights" `Quick
            test_exhaustion_at_tiny_weights;
          Alcotest.test_case "zero-detect under racing drops" `Quick
            test_zero_detect_racing_drops;
        ] );
      ( "crash-sweeps",
        [
          Alcotest.test_case "snark sweep leak-free" `Quick
            test_snark_sweep_leak_free;
          Alcotest.test_case "treiber weight=2 sweep leak-free" `Quick
            test_treiber_tiny_weight_sweep_leak_free;
          Alcotest.test_case "E11 matrix wait-free leak-free" `Quick
            test_matrix_leak_free_wait_free;
        ] );
    ]
