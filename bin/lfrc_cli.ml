(* Command-line front end: run experiments (EXPERIMENTS.md tables), quick
   model checks, and linearizability scenario runs. *)

open Cmdliner

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E10); all when omitted.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated values instead of aligned tables.")
  in
  let run csv ids =
    let selected =
      match ids with
      | [] -> Lfrc_harness.Experiments.all
      | ids ->
          List.filter_map
            (fun id ->
              match Lfrc_harness.Experiments.find id with
              | Some e -> Some e
              | None ->
                  Printf.eprintf "unknown experiment %s\n" id;
                  None)
            ids
    in
    List.iter
      (fun e ->
        if csv then begin
          Printf.printf "# %s: %s\n" e.Lfrc_harness.Experiments.id
            e.Lfrc_harness.Experiments.title;
          print_string (Lfrc_util.Table.csv (e.Lfrc_harness.Experiments.run ()))
        end
        else Lfrc_harness.Experiments.run_and_print e)
      selected
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the EXPERIMENTS.md tables")
    Term.(const run $ csv $ ids)

let check_cmd =
  let variant =
    Arg.(
      value
      & opt (enum [ ("published", `Published); ("fixed", `Fixed) ]) `Fixed
      & info [ "variant" ] ~doc:"Snark variant to check.")
  in
  let schedules =
    Arg.(value & opt int 20_000 & info [ "schedules" ] ~doc:"Randomized schedules per scenario.")
  in
  let run variant schedules =
    let dq : (module Lfrc_structures.Deque_intf.DEQUE) =
      match variant with
      | `Published ->
          (module Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops))
      | `Fixed ->
          (module Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops))
    in
    let scenarios =
      Lfrc_harness.Scenario.
        [
          ("popR+popL+pushR on [1;2]", [ 1; 2 ],
           [ [ Pop_right ]; [ Pop_left ]; [ Push_right 3 ] ]);
          ("popR+popL+pushL on [1]", [ 1 ],
           [ [ Pop_right ]; [ Pop_left ]; [ Push_left 3 ] ]);
          ("2popR+popL+2pushR on [1]", [ 1 ],
           [ [ Pop_right; Pop_right ]; [ Pop_left ];
             [ Push_right 3; Push_right 4 ] ]);
        ]
    in
    let failed = ref false in
    List.iter
      (fun (name, preload, threads) ->
        let bad = ref 0 in
        for seed = 0 to schedules - 1 do
          let o =
            Lfrc_harness.Scenario.run dq ~preload ~threads
              (Lfrc_sched.Strategy.Random seed)
          in
          if not o.Lfrc_harness.Scenario.ok then incr bad
        done;
        Printf.printf "%-28s %d/%d schedules linearizable%s\n%!" name
          (schedules - !bad) schedules
          (if !bad > 0 then "  <-- VIOLATIONS" else "");
        if !bad > 0 then failed := true)
      scenarios;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Randomized linearizability check of a Snark variant")
    Term.(const run $ variant $ schedules)

let chaos_cmd =
  let module E11 = Lfrc_harness.E11_chaos in
  let structure =
    let names = List.map (fun s -> (E11.structure_name s, s)) E11.structures in
    Arg.(
      value
      & opt (some (enum names)) None
      & info [ "structure" ] ~doc:"Structure to torture; all when omitted.")
  in
  let fault =
    let names = List.map (fun f -> (E11.fault_name f, f)) E11.fault_kinds in
    Arg.(
      value
      & opt (some (enum names)) None
      & info [ "fault" ] ~doc:"Fault kind to inject; all when omitted.")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Seeds per cell (1..N).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every run's report, not just failures.")
  in
  let run structure fault seeds verbose =
    let structures =
      match structure with Some s -> [ s ] | None -> E11.structures
    in
    let faults = match fault with Some f -> [ f ] | None -> E11.fault_kinds in
    let failed = ref false in
    List.iter
      (fun s ->
        List.iter
          (fun f ->
            for seed = 1 to seeds do
              let r = E11.run_one ~structure:s ~fault:f ~seed in
              let bad = not (Lfrc_faults.Chaos.ok r) in
              if bad then failed := true;
              if bad || verbose then
                Format.printf "[%s/%s seed=%d] %s@\n%a@.@."
                  (E11.structure_name s) (E11.fault_name f) seed
                  (if bad then "FAIL" else "ok")
                  Lfrc_faults.Chaos.pp r
              else
                Printf.printf "[%s/%s seed=%d] ok\n%!" (E11.structure_name s)
                  (E11.fault_name f) seed
            done)
          faults)
        structures;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injection runs (spurious CAS/DCAS, OOM, crashes) with post-mortem heap audit")
    Term.(const run $ structure $ fault $ seeds $ verbose)

let main =
  Cmd.group
    (Cmd.info "lfrc_cli" ~version:"1.0.0"
       ~doc:"Lock-free reference counting (PODC 2001) reproduction toolkit")
    [ experiments_cmd; check_cmd; chaos_cmd ]

let () = exit (Cmd.eval main)
