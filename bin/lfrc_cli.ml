(* Command-line front end: run experiments (EXPERIMENTS.md tables), quick
   model checks, linearizability scenario runs, fault-injection campaigns,
   and observability dumps (metrics JSON, Chrome-trace timelines). *)

open Cmdliner

(* --- the shared experiment configuration as a term --- *)

(* Shared by config_term and the workload commands (stats/trace/profile/
   forensics), so every entry point that builds an environment can opt
   into coalescing. *)
let deferred_rc_flag =
  Arg.(
    value & flag
    & info [ "deferred-rc" ]
        ~doc:
          "Run LFRC environments in deferred-rc coalescing mode: count \
           adjustments park in per-thread buffers and are applied as \
           netted CASes at bounded epochs (and at quiescent points).")

let wait_free_rc_flag =
  Arg.(
    value & flag
    & info [ "wait-free-rc" ]
        ~doc:
          "Run LFRC environments in wait-free weighted-rc mode: split \
           reference counts adjusted by single fetch-adds, weight \
           borrowing on pointer handoff, DCAS only as the \
           weight-exhaustion fallback. Wins over $(b,--deferred-rc).")

let rc_epoch_of_flag deferred_rc =
  if deferred_rc then Lfrc_harness.Scenario.deferred_rc_epoch else 0

(* The rc mode the two flags select, matching Scenario.rc_mode_of. *)
let rc_mode_of_flags ~deferred_rc ~wait_free_rc =
  if wait_free_rc then
    Lfrc_core.Env.Wait_free { weight = Lfrc_harness.Scenario.wait_free_weight }
  else Lfrc_core.Env.rc_mode_of_epoch (rc_epoch_of_flag deferred_rc)

(* Header suffix naming the selected mode in the workload commands. *)
let rc_mode_suffix ~deferred_rc ~wait_free_rc =
  if wait_free_rc then ", wait-free-rc"
  else if deferred_rc then ", deferred-rc"
  else ""

let config_term =
  let d = Lfrc_harness.Scenario.default_config in
  let threads =
    Arg.(
      value
      & opt int d.Lfrc_harness.Scenario.threads
      & info [ "threads" ] ~docv:"N"
          ~doc:"Worker-thread ceiling for multi-threaded experiments.")
  in
  let ops =
    Arg.(
      value
      & opt int d.Lfrc_harness.Scenario.ops_per_thread
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker thread.")
  in
  let iters =
    Arg.(
      value
      & opt int d.Lfrc_harness.Scenario.iters
      & info [ "iters" ] ~docv:"N"
          ~doc:"Single-threaded timing-loop iterations.")
  in
  let seed =
    Arg.(
      value
      & opt int d.Lfrc_harness.Scenario.seed
      & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed for schedules and op mixes.")
  in
  let no_metrics =
    Arg.(
      value & flag
      & info [ "no-metrics" ]
          ~doc:"Disable metrics collection (suppresses the JSON blocks).")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Fault-plan spec (Lfrc_faults.Fault_plan syntax) overriding \
             E11's built-in fault matrix.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attribute DCAS/CAS retries and op latencies to labeled call \
             sites and print a per-experiment contention table.")
  in
  let blame =
    Arg.(
      value & flag
      & info [ "blame" ]
          ~doc:
            "Attribute every failed CAS/DCAS/rc-retry to the thread and \
             call site whose write invalidated it, and print a ranked \
             victim->culprit interference report per experiment.")
  in
  let build threads ops iters seed no_metrics fault profile blame deferred_rc
      wait_free_rc =
    match
      Option.map
        (fun s ->
          match Lfrc_faults.Fault_plan.spec_of_string s with
          | Some spec -> Ok spec
          | None -> Error s)
        fault
    with
    | Some (Error s) -> `Error (false, Printf.sprintf "bad fault spec %S" s)
    | fault ->
        let fault =
          match fault with Some (Ok spec) -> Some spec | _ -> None
        in
        `Ok
          {
            Lfrc_harness.Scenario.threads;
            ops_per_thread = ops;
            iters;
            seed;
            fault;
            metrics = not no_metrics;
            trace_capacity = 0;
            profile;
            blame;
            deferred_rc;
            wait_free_rc;
          }
  in
  Term.(
    ret
      (const build $ threads $ ops $ iters $ seed $ no_metrics $ fault
     $ profile $ blame $ deferred_rc_flag $ wait_free_rc_flag))

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E11); all when omitted.")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit comma-separated values instead of aligned tables.")
  in
  let run config csv ids =
    match ids with
    | [] -> Lfrc_harness.Experiments.run_all ~config ()
    | ids ->
        if not (Lfrc_harness.Experiments.run_ids ~config ~csv ids) then exit 1
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the EXPERIMENTS.md tables")
    Term.(const run $ config_term $ csv $ ids)

(* --- workload plumbing shared by stats and trace --- *)

let structure_arg =
  let names = List.map (fun (n, w) -> (n, (n, w))) Lfrc_harness.Common.workloads in
  Arg.(
    value
    & opt (enum names) (List.hd names |> snd)
    & info [ "structure" ]
        ~doc:(Printf.sprintf "Structure to drive: %s."
                (String.concat ", " (List.map fst names))))

let run_workload ?lineage ?profile ?blame ?(rc_mode = Lfrc_core.Env.Eager)
    ~workload ~workers ~ops_per_worker ~seed ~metrics ~tracer () =
  let heap = Lfrc_simmem.Heap.create ~name:"cli-workload" () in
  let env =
    Lfrc_core.Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ~rc_mode
      ~metrics ~tracer ?lineage ?profile ?blame heap
  in
  ignore
    (Lfrc_sched.Sched.run ~max_steps:400_000_000
       (Lfrc_sched.Strategy.Random seed)
       (fun () -> workload ~workers ~ops_per_worker ~seed env))

let stats_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule and op-mix seed.")
  in
  let run (name, workload) workers ops seed deferred_rc wait_free_rc =
    let metrics = Lfrc_obs.Metrics.create () in
    run_workload
      ~rc_mode:(rc_mode_of_flags ~deferred_rc ~wait_free_rc)
      ~workload ~workers ~ops_per_worker:ops ~seed ~metrics
      ~tracer:Lfrc_obs.Tracer.disabled ();
    let tier =
      match Lfrc_structures.Catalog.find name with
      | Some e ->
          Printf.sprintf " [%s-tier]"
            (Lfrc_structures.Catalog.tier_name
               (Lfrc_structures.Catalog.tier e))
      | None -> ""
    in
    Printf.printf "# %s%s: %d threads x %d ops, seed %d%s\n%s\n" name tier
      workers ops seed
      (rc_mode_suffix ~deferred_rc ~wait_free_rc)
      (Lfrc_obs.Metrics.to_json (Lfrc_obs.Metrics.snapshot metrics))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a structure workload under the simulator and print its \
          metrics snapshot as JSON (DCAS traffic, LFRC op/retry counts, \
          heap alloc/free balance)")
    Term.(
      const run $ structure_arg $ workers $ ops $ seed $ deferred_rc_flag
      $ wait_free_rc_flag)

let trace_cmd =
  let workers =
    Arg.(value & opt int 3 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let ops =
    Arg.(value & opt int 50 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule and op-mix seed.")
  in
  let capacity =
    Arg.(
      value & opt int 65_536
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Event-ring capacity; oldest events drop beyond it.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("text", `Text) ]) `Chrome
      & info [ "format" ]
          ~doc:"Output format: $(b,chrome) (chrome://tracing JSON) or $(b,text) (step-numbered timeline).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run (name, workload) workers ops seed capacity format output deferred_rc
      wait_free_rc =
    let tracer = Lfrc_obs.Tracer.create ~capacity in
    (* Saved traces outlive the invocation that produced them: stamp the
       run's provenance into the tracer so the chrome header / timeline
       footer says what made it. *)
    Lfrc_obs.Tracer.set_meta tracer
      [
        ("structure", name);
        ( "tier",
          match Lfrc_structures.Catalog.find name with
          | Some e ->
              Lfrc_structures.Catalog.tier_name
                (Lfrc_structures.Catalog.tier e)
          | None -> "?" );
        ("workers", string_of_int workers);
        ("ops_per_worker", string_of_int ops);
        ("seed", string_of_int seed);
        ( "rc_mode",
          if wait_free_rc then
            Printf.sprintf "wait-free(%d)" Lfrc_harness.Scenario.wait_free_weight
          else if deferred_rc then
            Printf.sprintf "deferred-rc(%d)"
              Lfrc_harness.Scenario.deferred_rc_epoch
          else "eager" );
      ];
    run_workload
      ~rc_mode:(rc_mode_of_flags ~deferred_rc ~wait_free_rc)
      ~workload ~workers ~ops_per_worker:ops ~seed
      ~metrics:Lfrc_obs.Metrics.disabled ~tracer ();
    let rendered =
      match format with
      | `Chrome -> Lfrc_obs.Tracer.to_chrome_json tracer
      | `Text -> Lfrc_obs.Tracer.to_timeline tracer
    in
    match output with
    | None -> print_string rendered
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            Out_channel.output_string oc rendered);
        Printf.printf "%d events (%d recorded, %d dropped) -> %s\n"
          (List.length (Lfrc_obs.Tracer.events tracer))
          (Lfrc_obs.Tracer.recorded tracer)
          (Lfrc_obs.Tracer.dropped tracer)
          file
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a structure workload with the event tracer on and emit the \
          timeline (chrome://tracing JSON or text)")
    Term.(
      const run $ structure_arg $ workers $ ops $ seed $ capacity $ format
      $ output $ deferred_rc_flag $ wait_free_rc_flag)

let profile_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule and op-mix seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the per-site records (plus the metrics snapshot with \
                its retry/latency histograms) as JSON.")
  in
  let run (name, workload) workers ops seed json deferred_rc wait_free_rc =
    let metrics = Lfrc_obs.Metrics.create () in
    let profile = Lfrc_obs.Profile.create ~metrics () in
    run_workload ~profile
      ~rc_mode:(rc_mode_of_flags ~deferred_rc ~wait_free_rc)
      ~workload ~workers ~ops_per_worker:ops ~seed ~metrics
      ~tracer:Lfrc_obs.Tracer.disabled ();
    if json then
      Printf.printf "{\"workload\":\"%s\",\"profile\":%s,\"metrics\":%s}\n"
        name
        (Lfrc_obs.Profile.to_json profile)
        (Lfrc_obs.Metrics.to_json (Lfrc_obs.Metrics.snapshot metrics))
    else begin
      Printf.printf "# %s: %d threads x %d ops, seed %d\n" name workers ops
        seed;
      print_string (Lfrc_obs.Profile.table profile)
    end
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a structure workload with the call-site contention profiler \
          on and print the per-site table (calls, retries, failed DCAS \
          attempts, scheduler-step latency), sorted by wasted attempts")
    Term.(const run $ structure_arg $ workers $ ops $ seed $ json
          $ deferred_rc_flag $ wait_free_rc_flag)

let blame_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let ops =
    Arg.(value & opt int 2_000 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule and op-mix seed.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit totals, ranked pairs, and retry-chain stats as JSON \
                (byte-deterministic for a given seed).")
  in
  let matrix =
    Arg.(
      value & flag
      & info [ "matrix" ]
          ~doc:"Print the victim x culprit wasted-attempt matrix instead \
                of the ranked report.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Pairs to rank in the report.")
  in
  let run (name, workload) workers ops seed json matrix top deferred_rc
      wait_free_rc =
    let metrics = Lfrc_obs.Metrics.create () in
    let blame = Lfrc_obs.Blame.create () in
    run_workload ~blame
      ~rc_mode:(rc_mode_of_flags ~deferred_rc ~wait_free_rc)
      ~workload ~workers ~ops_per_worker:ops ~seed ~metrics
      ~tracer:Lfrc_obs.Tracer.disabled ();
    if json then print_endline (Lfrc_obs.Blame.to_json blame)
    else if matrix then print_string (Lfrc_obs.Blame.matrix blame)
    else begin
      Printf.printf "# %s: %d threads x %d ops, seed %d%s\n" name workers ops
        seed
        (rc_mode_suffix ~deferred_rc ~wait_free_rc);
      print_string (Lfrc_obs.Blame.report ~top blame)
    end
  in
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Run a structure workload with contention blame attribution on: \
          every failed CAS/DCAS/rc-retry is charged to the thread and call \
          site whose write invalidated it (exact under the deterministic \
          scheduler). Prints the ranked victim->culprit report, the \
          interference matrix ($(b,--matrix)), or machine-readable JSON \
          ($(b,--json)).")
    Term.(
      const run $ structure_arg $ workers $ ops $ seed $ json $ matrix $ top
      $ deferred_rc_flag $ wait_free_rc_flag)

let forensics_cmd =
  let workers =
    Arg.(value & opt int 3 & info [ "threads" ] ~docv:"N" ~doc:"Worker threads.")
  in
  let ops =
    Arg.(value & opt int 25 & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Schedule and fault-plan seed.")
  in
  let ring =
    Arg.(
      value & opt int 64
      & info [ "ring" ] ~docv:"N"
          ~doc:"Lifecycle events retained per object (older ones drop).")
  in
  let fault =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"SPEC"
          ~doc:
            "Fault-plan spec (Lfrc_faults.Fault_plan syntax) to inject; \
             $(b,--leaks) defaults to a thread-crash plan when omitted.")
  in
  let addr =
    Arg.(
      value
      & opt (some int) None
      & info [ "addr" ] ~docv:"ADDR"
          ~doc:"Print the full lifecycle timeline of this object id.")
  in
  let leaks =
    Arg.(
      value & flag
      & info [ "leaks" ]
          ~doc:
            "Join the post-mortem audit's leaked objects against the \
             lineage: name each leaked address and the operation that \
             dropped its last reference.")
  in
  let top =
    Arg.(
      value & opt int 0
      & info [ "top" ] ~docv:"N"
          ~doc:"Print the N busiest objects (most lifecycle events).")
  in
  let chrome =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write a chrome://tracing JSON export of the recorded \
             lifecycles (one track per object) to FILE.")
  in
  let run (name, workload) workers ops seed ring fault addr leaks top chrome
      deferred_rc wait_free_rc =
    let parsed =
      Option.map
        (fun s ->
          match Lfrc_faults.Fault_plan.spec_of_string s with
          | Some spec -> Ok spec
          | None -> Error s)
        fault
    in
    match parsed with
    | Some (Error s) -> `Error (false, Printf.sprintf "bad fault spec %S" s)
    | None | Some (Ok _) ->
        let spec =
          match parsed with
          | Some (Ok spec) -> spec
          | _ ->
              if leaks then
                (* A worker crash mid-operation is the canonical leak
                   generator: the dead thread's counted references are
                   never dropped. *)
                {
                  Lfrc_faults.Fault_plan.default with
                  seed;
                  crashes = [ (1 + (seed mod workers), 15) ];
                }
              else { Lfrc_faults.Fault_plan.default with seed }
        in
        let lineage = Lfrc_obs.Lineage.create ~ring () in
        let r =
          Lfrc_faults.Chaos.run ~lineage
            ~rc_mode:(rc_mode_of_flags ~deferred_rc ~wait_free_rc)
            ~max_steps:400_000
            ~strategy:(Lfrc_sched.Strategy.Random seed) ~spec
            (fun env ->
              match workload ~workers ~ops_per_worker:ops ~seed env with
              | () -> ()
              | exception Lfrc_simmem.Heap.Simulated_oom -> ())
        in
        Format.printf "# %s: %d threads x %d ops, %a@\n%s@\n" name workers ops
          Lfrc_faults.Chaos.pp_status r.Lfrc_faults.Chaos.status
          (Lfrc_obs.Lineage.summary lineage);
        if leaks then begin
          match r.Lfrc_faults.Chaos.audit with
          | None ->
              print_string
                "run did not complete; no audit to join against\n"
          | Some a ->
              print_string
                (Lfrc_obs.Lineage.leak_report lineage
                   ~addrs:a.Lfrc_faults.Audit.leaked_ids);
              let over =
                List.filter_map
                  (function
                    | Lfrc_faults.Audit.Rc_below_refs { id; _ } -> Some id
                    | _ -> None)
                  a.Lfrc_faults.Audit.findings
              in
              if over <> [] then
                print_string
                  (Lfrc_obs.Lineage.double_free_report lineage ~addrs:over)
        end;
        Option.iter
          (fun a -> print_string (Lfrc_obs.Lineage.timeline lineage ~addr:a))
          addr;
        let top =
          if top = 0 && addr = None && not leaks then 5 else top
        in
        if top > 0 then begin
          Printf.printf "busiest objects:\n";
          List.iter
            (fun (a, n) ->
              let tail =
                match Lfrc_obs.Lineage.last_event lineage ~addr:a with
                | Some ev ->
                    Format.asprintf "last: %a" Lfrc_obs.Lineage.pp_event ev
                | None -> ""
              in
              Printf.printf "  addr %-6d %5d events   %s\n" a n tail)
            (Lfrc_obs.Lineage.top lineage ~n:top)
        end;
        Option.iter
          (fun file ->
            Out_channel.with_open_text file (fun oc ->
                Out_channel.output_string oc
                  (Lfrc_obs.Lineage.to_chrome_json lineage));
            Printf.printf "lifecycle trace -> %s\n" file)
          chrome;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:
         "Run a structure workload with the per-object lifecycle recorder \
          on and render forensic reports: per-address timelines, the \
          busiest objects, chrome://tracing lifecycle export, and (with \
          $(b,--leaks)) the audit-joined report naming the operation that \
          dropped each leaked object's last reference")
    Term.(
      ret
        (const run $ structure_arg $ workers $ ops $ seed $ ring $ fault
       $ addr $ leaks $ top $ chrome $ deferred_rc_flag $ wait_free_rc_flag))

let check_cmd =
  let variant =
    Arg.(
      value
      & opt (enum [ ("published", `Published); ("fixed", `Fixed) ]) `Fixed
      & info [ "variant" ] ~doc:"Snark variant to check.")
  in
  let schedules =
    Arg.(value & opt int 20_000 & info [ "schedules" ] ~doc:"Randomized schedules per scenario.")
  in
  let run variant schedules =
    let dq : (module Lfrc_structures.Deque_intf.DEQUE) =
      match variant with
      | `Published ->
          (module Lfrc_structures.Snark.Make (Lfrc_core.Lfrc_ops))
      | `Fixed ->
          (module Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops))
    in
    let scenarios =
      Lfrc_harness.Scenario.
        [
          ("popR+popL+pushR on [1;2]", [ 1; 2 ],
           [ [ Pop_right ]; [ Pop_left ]; [ Push_right 3 ] ]);
          ("popR+popL+pushL on [1]", [ 1 ],
           [ [ Pop_right ]; [ Pop_left ]; [ Push_left 3 ] ]);
          ("2popR+popL+2pushR on [1]", [ 1 ],
           [ [ Pop_right; Pop_right ]; [ Pop_left ];
             [ Push_right 3; Push_right 4 ] ]);
        ]
    in
    let failed = ref false in
    List.iter
      (fun (name, preload, threads) ->
        let bad = ref 0 in
        for seed = 0 to schedules - 1 do
          let o =
            Lfrc_harness.Scenario.run dq ~preload ~threads
              (Lfrc_sched.Strategy.Random seed)
          in
          if not o.Lfrc_harness.Scenario.ok then incr bad
        done;
        Printf.printf "%-28s %d/%d schedules linearizable%s\n%!" name
          (schedules - !bad) schedules
          (if !bad > 0 then "  <-- VIOLATIONS" else "");
        if !bad > 0 then failed := true)
      scenarios;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Randomized linearizability check of a Snark variant")
    Term.(const run $ variant $ schedules)

let chaos_cmd =
  let module E11 = Lfrc_harness.E11_chaos in
  let structure =
    let names = List.map (fun s -> (E11.structure_name s, s)) E11.structures in
    Arg.(
      value
      & opt (some (enum names)) None
      & info [ "structure" ] ~doc:"Structure to torture; all when omitted.")
  in
  let fault =
    let names = List.map (fun f -> (E11.fault_name f, f)) E11.fault_kinds in
    Arg.(
      value
      & opt (some (enum names)) None
      & info [ "fault" ] ~doc:"Fault kind to inject; all when omitted.")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~doc:"Seeds per cell (1..N).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print every run's report, not just failures.")
  in
  let recover =
    Arg.(
      value & flag
      & info [ "recover" ]
          ~doc:
            "Run the crash-recovery adoption pass after each run and audit \
             strictly: crashed threads' orphaned references are adopted \
             and the run fails on $(i,any) remaining leak, not just an \
             unaccounted one.")
  in
  let run structure fault seeds verbose recover deferred_rc wait_free_rc =
    let rc_mode = rc_mode_of_flags ~deferred_rc ~wait_free_rc in
    let structures =
      match structure with Some s -> [ s ] | None -> E11.structures
    in
    let faults = match fault with Some f -> [ f ] | None -> E11.fault_kinds in
    let failed = ref false in
    List.iter
      (fun s ->
        List.iter
          (fun f ->
            for seed = 1 to seeds do
              let r =
                E11.run_one ~rc_mode ~recover ~structure:s ~fault:f ~seed ()
              in
              let bad = not (Lfrc_faults.Chaos.ok r) in
              if bad then failed := true;
              if bad || verbose then
                Format.printf "[%s/%s seed=%d] %s@\n%a@.@."
                  (E11.structure_name s) (E11.fault_name f) seed
                  (if bad then "FAIL" else "ok")
                  Lfrc_faults.Chaos.pp r
              else
                Printf.printf "[%s/%s seed=%d] ok\n%!" (E11.structure_name s)
                  (E11.fault_name f) seed
            done)
          faults)
        structures;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injection runs (spurious CAS/DCAS, OOM, crashes) with post-mortem heap audit")
    Term.(
      const run $ structure $ fault $ seeds $ verbose $ recover
      $ deferred_rc_flag $ wait_free_rc_flag)

let analyze_cmd =
  let module Checker = Lfrc_analysis.Checker in
  let module Report = Lfrc_analysis.Report in
  let structure =
    Arg.(
      value
      & opt (some string) None
      & info [ "structure" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Analyze only this structure (one of: %s)."
               (String.concat ", " (Lfrc_structures.Catalog.names ()))))
  in
  let tier =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("cas", Lfrc_structures.Catalog.Cas);
                  ("dcas", Lfrc_structures.Catalog.Dcas);
                ]))
          None
      & info [ "tier" ] ~docv:"TIER"
          ~doc:
            "Analyze only structures of this primitive tier (cas = \
             single-word CAS only, dcas = needs double-word CAS). The \
             claimed tier is also what each structure's paths are held \
             to: a cas-tier structure recording a DCAS is a violation.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let max_paths =
    Arg.(
      value
      & opt int Checker.default_limits.Checker.max_paths
      & info [ "max-paths" ] ~docv:"N"
          ~doc:"Explored control-flow paths per action before giving up.")
  in
  let max_decisions =
    Arg.(
      value
      & opt int Checker.default_limits.Checker.max_decisions
      & info [ "max-decisions" ] ~docv:"N"
          ~doc:"Oracle decisions per path before the path is cut off.")
  in
  let run structure tier json max_paths max_decisions =
    let limits = { Checker.max_paths; max_decisions } in
    let report =
      match (structure, tier) with
      | None, _ -> Ok (Checker.analyze_all ~limits ?tier ())
      | Some name, None -> Checker.analyze_structure ~limits name
      | Some name, Some t -> (
          match Lfrc_structures.Catalog.find name with
          | Some e when Lfrc_structures.Catalog.tier e <> t ->
              Error
                (Printf.sprintf "structure %S is %s-tier, not %s-tier" name
                   (Lfrc_structures.Catalog.tier_name
                      (Lfrc_structures.Catalog.tier e))
                   (Lfrc_structures.Catalog.tier_name t))
          | _ -> Checker.analyze_structure ~limits name)
    in
    match report with
    | Error msg -> `Error (false, msg)
    | Ok report ->
        if json then print_endline (Report.to_json report)
        else print_string (Report.to_string report);
        if Report.errors report > 0 then exit 1 else `Ok ()
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically check the shipped structures against the LFRC pointer \
          discipline (Table 1): enumerate each operation's control-flow \
          paths symbolically and verify every local pointer is retired, \
          no retired local is reused, and no raw pointer outlives its \
          counted reference. Exits 1 on any violation.")
    Term.(
      ret (const run $ structure $ tier $ json $ max_paths $ max_decisions))

let sanitize_cmd =
  let module San = Lfrc_harness.Sanitize_run in
  let module Shadow = Lfrc_sanitize.Shadow in
  let structure =
    Arg.(
      value
      & opt (some string) None
      & info [ "structure" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Sanitize only this structure (one of: %s)."
               (String.concat ", " (San.structure_names ()))))
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let fixtures_flag =
    Arg.(
      value & flag
      & info [ "fixtures" ]
          ~doc:
            "Run the seeded-bug fixtures instead of the catalog: the gate \
             inverts, succeeding only when every fixture's finding class \
             is detected with a witness.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Widen the schedule matrix (the nightly configuration; also \
             enabled by LFRC_SAN_FULL=1).")
  in
  let workers =
    Arg.(
      value & opt int 3
      & info [ "workers" ] ~docv:"N" ~doc:"Worker threads per run.")
  in
  let ops =
    Arg.(
      value & opt int 40
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per worker per run.")
  in
  let esc s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let json_outcome b (o : San.outcome) =
    let t = o.San.o_totals in
    Buffer.add_string b
      (Printf.sprintf
         "{\"structure\":\"%s\",\"schedules\":[%s],\"checks\":%d,\
          \"races\":%d,\"uaf\":%d,\"uar\":%d,\"aba\":%d,\
          \"aba_harmful\":%d,\"findings\":["
         (esc o.San.o_structure)
         (String.concat ","
            (List.map
               (fun s -> Printf.sprintf "\"%s\"" (esc s))
               o.San.o_schedules))
         t.Shadow.checks t.Shadow.races t.Shadow.uaf t.Shadow.uar
         t.Shadow.aba t.Shadow.aba_harmful);
    List.iteri
      (fun i (w : San.witness) ->
        if i > 0 then Buffer.add_char b ',';
        let f = w.San.w_finding in
        Buffer.add_string b
          (Printf.sprintf
             "{\"kind\":\"%s\",\"slot\":\"%s\",\"addr\":%d,\"gen\":%d,\
              \"count\":%d,\"replay\":\"%s\",\"message\":\"%s\",\
              \"lineage\":\"%s\"}"
             (Shadow.kind_name f.Shadow.f_kind)
             (esc f.Shadow.f_slot) f.Shadow.f_addr f.Shadow.f_gen
             f.Shadow.f_count (esc w.San.w_schedule)
             (esc f.Shadow.f_message) (esc w.San.w_lineage)))
      o.San.o_witnesses;
    Buffer.add_string b "]}"
  in
  let print_outcome (o : San.outcome) =
    let t = o.San.o_totals in
    Printf.printf
      "%-18s %d schedules  %8d checks  races=%d uaf=%d uar=%d aba=%d \
       (harmful=%d)  %s\n"
      o.San.o_structure
      (List.length o.San.o_schedules)
      t.Shadow.checks t.Shadow.races t.Shadow.uaf t.Shadow.uar t.Shadow.aba
      t.Shadow.aba_harmful
      (if o.San.o_witnesses = [] then "clean" else "FINDINGS");
    List.iter
      (fun (w : San.witness) ->
        Format.printf "  %a@."
          Lfrc_sanitize.Shadow.pp_finding w.San.w_finding;
        Printf.printf "    replay: --strategy %s\n" w.San.w_schedule;
        if w.San.w_lineage <> "" then begin
          String.split_on_char '\n' w.San.w_lineage
          |> List.iter (fun l -> Printf.printf "    | %s\n" l)
        end)
      o.San.o_witnesses;
    if o.San.o_aba_sites <> [] then begin
      Printf.printf "  benign aba by site:";
      List.iter
        (fun (site, n) -> Printf.printf " %s=%d" site n)
        o.San.o_aba_sites;
      print_newline ()
    end
  in
  let run structure json fixtures full workers ops deferred_rc wait_free_rc =
    let full = full || Sys.getenv_opt "LFRC_SAN_FULL" = Some "1" in
    let rc_mode = rc_mode_of_flags ~deferred_rc ~wait_free_rc in
    let schedules = San.schedules ~full in
    let results =
      if fixtures then
        List.map
          (fun (name, _) ->
            match San.run_fixture name with
            | Ok o -> o
            | Error msg -> failwith msg)
          San.fixtures
      else
        let names =
          match structure with
          | Some n -> [ n ]
          | None -> San.structure_names ()
        in
        List.map
          (fun n ->
            match
              San.run_structure ~workers ~ops_per_worker:ops ~schedules
                ~rc_mode n
            with
            | Ok o -> o
            | Error msg -> raise (Failure msg))
          names
    in
    match results with
    | exception Failure msg -> `Error (false, msg)
    | results ->
        if json then begin
          let b = Buffer.create 4096 in
          Buffer.add_string b "{\"report\":\"lfrc-sanitize\",\"runs\":[";
          List.iteri
            (fun i o ->
              if i > 0 then Buffer.add_char b ',';
              json_outcome b o)
            results;
          Buffer.add_string b "]}";
          print_endline (Buffer.contents b)
        end
        else List.iter print_outcome results;
        if fixtures then begin
          let missed =
            List.filter (fun o -> not (San.fixture_detected o)) results
          in
          if missed <> [] then begin
            List.iter
              (fun (o : San.outcome) ->
                Printf.eprintf "fixture NOT detected: %s\n" o.San.o_structure)
              missed;
            exit 1
          end;
          `Ok ()
        end
        else if List.exists (fun o -> o.San.o_witnesses <> []) results then
          exit 1
        else `Ok ()
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Run the shipped structures under LFRC-San, the shadow-memory \
          race / use-after-free / ABA sanitizer, across a matrix of \
          deterministic schedules. Every finding carries a replay token \
          and a lineage excerpt naming both racing operations. Exits 1 on \
          any finding; with --fixtures the gate inverts (the seeded bugs \
          must all be caught).")
    Term.(
      ret
        (const run $ structure $ json $ fixtures_flag $ full $ workers $ ops
        $ deferred_rc_flag $ wait_free_rc_flag))

let main =
  Cmd.group
    (Cmd.info "lfrc_cli" ~version:"1.0.0"
       ~doc:"Lock-free reference counting (PODC 2001) reproduction toolkit")
    [
      experiments_cmd;
      stats_cmd;
      trace_cmd;
      profile_cmd;
      blame_cmd;
      forensics_cmd;
      check_cmd;
      chaos_cmd;
      analyze_cmd;
      sanitize_cmd;
    ]

let () = exit (Cmd.eval main)
