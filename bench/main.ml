(* Benchmark entry point.

   Two parts:

   1. The experiment harness (E1..E10): regenerates every table recorded in
      EXPERIMENTS.md — the reproduction's evaluation suite. Run with no
      arguments, or with experiment ids to select.

   2. A bechamel micro-benchmark pass over the core LFRC operations and
      the deque/stack/queue operations, giving allocation-aware per-op
      timings that complement E1's coarse loop timing. Enabled with
      the single argument "micro".

   The paper itself publishes no measured tables (see EXPERIMENTS.md);
   each E-table is this repository's quantitative evaluation of the
   paper's qualitative claims. *)

module Heap = Lfrc_simmem.Heap
module Layout = Lfrc_simmem.Layout
module Env = Lfrc_core.Env
module Lfrc = Lfrc_core.Lfrc

let node = Layout.make ~name:"bench-node" ~n_ptrs:2 ~n_vals:1

(* --- bechamel micro-suite --- *)

let make_lfrc_op_tests () =
  let heap = Heap.create ~name:"bench-lfrc" () in
  let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
  let cell_a = Heap.root heap ~name:"A" () in
  let cell_b = Heap.root heap ~name:"B" () in
  let a = Lfrc.alloc env node and b = Lfrc.alloc env node in
  Lfrc.store_alloc env ~dst:cell_a a;
  Lfrc.store_alloc env ~dst:cell_b b;
  let dest = ref Heap.null in
  [
    Bechamel.Test.make ~name:"lfrc-load"
      (Bechamel.Staged.stage (fun () -> Lfrc.load env ~src:cell_a ~dest));
    Bechamel.Test.make ~name:"lfrc-store"
      (Bechamel.Staged.stage (fun () -> Lfrc.store env ~dst:cell_a a));
    Bechamel.Test.make ~name:"lfrc-cas"
      (Bechamel.Staged.stage (fun () ->
           ignore (Lfrc.cas env cell_a ~old_ptr:a ~new_ptr:a)));
    Bechamel.Test.make ~name:"lfrc-dcas"
      (Bechamel.Staged.stage (fun () ->
           ignore (Lfrc.dcas env cell_a cell_b ~old0:a ~old1:b ~new0:a ~new1:b)));
    Bechamel.Test.make ~name:"lfrc-alloc-destroy"
      (Bechamel.Staged.stage (fun () ->
           let p = Lfrc.alloc env node in
           Lfrc.destroy env p));
  ]

let make_structure_tests () =
  let mk_deque (module D : Lfrc_structures.Deque_intf.DEQUE) name =
    let heap = Heap.create ~name () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
    let d = D.create env in
    let h = D.register d in
    (* steady state: keep a few elements so pops always succeed *)
    for i = 1 to 8 do
      D.push_right h i
    done;
    Bechamel.Test.make ~name:(name ^ "-push-pop")
      (Bechamel.Staged.stage (fun () ->
           D.push_right h 1;
           ignore (D.pop_left h)))
  in
  let module Fixed = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Lfrc_ops) in
  let module Gc = Lfrc_structures.Snark_fixed.Make (Lfrc_core.Gc_ops) in
  let mk_stack () =
    let heap = Heap.create ~name:"bench-stack" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
    let module S = Lfrc_structures.Treiber.Make (Lfrc_core.Lfrc_ops) in
    let s = S.create env in
    let h = S.register s in
    for i = 1 to 8 do
      S.push h i
    done;
    Bechamel.Test.make ~name:"treiber-lfrc-push-pop"
      (Bechamel.Staged.stage (fun () ->
           S.push h 1;
           ignore (S.pop h)))
  in
  let mk_queue () =
    let heap = Heap.create ~name:"bench-queue" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
    let module Q = Lfrc_structures.Msqueue.Make (Lfrc_core.Lfrc_ops) in
    let q = Q.create env in
    let h = Q.register q in
    for i = 1 to 8 do
      Q.enqueue h i
    done;
    Bechamel.Test.make ~name:"msqueue-lfrc-enq-deq"
      (Bechamel.Staged.stage (fun () ->
           Q.enqueue h 1;
           ignore (Q.dequeue h)))
  in
  let mk_set () =
    let heap = Heap.create ~name:"bench-set" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
    let module S = Lfrc_structures.Dlist_set.Make (Lfrc_core.Lfrc_ops) in
    let s = S.create env in
    let h = S.register s in
    for i = 1 to 64 do
      ignore (S.insert h (i * 2))
    done;
    let k = ref 1 in
    Bechamel.Test.make ~name:"dlist-set-ins-rem"
      (Bechamel.Staged.stage (fun () ->
           k := (!k mod 63) + 1;
           ignore (S.insert h ((!k * 2) + 1));
           ignore (S.remove h ((!k * 2) + 1))))
  in
  let mk_skiplist () =
    let heap = Heap.create ~name:"bench-skip" () in
    let env = Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step heap in
    let module S = Lfrc_structures.Skiplist.Make (Lfrc_core.Lfrc_ops) in
    let s = S.create env in
    let h = S.register s in
    for i = 1 to 1024 do
      ignore (S.insert h (i * 2))
    done;
    let k = ref 1 in
    Bechamel.Test.make ~name:"skiplist-1k-contains"
      (Bechamel.Staged.stage (fun () ->
           k := (!k * 31 mod 2047) + 1;
           ignore (S.contains h !k)))
  in
  [
    mk_deque (module Fixed) "snark-lfrc";
    mk_deque (module Gc) "snark-gc";
    mk_deque (module Lfrc_structures.Locked_deque) "locked";
    mk_stack ();
    mk_queue ();
    mk_set ();
    mk_skiplist ();
  ]

let run_micro () =
  let open Bechamel in
  let benchmark test =
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let tests =
    Test.make_grouped ~name:"lfrc" ~fmt:"%s/%s"
      (make_lfrc_op_tests () @ make_structure_tests ())
  in
  let results = benchmark tests in
  let results = analyze results in
  print_endline "bechamel micro-benchmarks (ns/op, OLS on monotonic clock):";
  Hashtbl.iter
    (fun name ols ->
      match Bechamel.Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-28s %10.1f ns/op\n" name est
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results

(* --- machine-readable pass: ops/sec per structure workload plus one
   timed run of every experiment, written as a single JSON file so CI and
   cross-PR comparisons can diff performance without parsing tables. --- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let run_json file =
  let module Clock = Lfrc_util.Clock in
  let module Metrics = Lfrc_obs.Metrics in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "{\n  \"workloads\": [";
  let workers = 4 and ops_per_worker = 2_000 and seed = 11 in
  (* Each workload runs in all three rc modes on the same seed: the eager
     entry keeps its historical name (and, because the eager path is
     untouched, its exact counters) for cross-PR comparison, and the
     deferred-rc / wait-free-rc entries carry a "+deferred-rc" /
     "+wait-free-rc" suffix so [--compare] treats each as its own
     workload family rather than drift on the eager one. *)
  let entries =
    List.concat_map
      (fun (name, workload) ->
        [ (name, Env.Eager, workload);
          ( name ^ "+deferred-rc",
            Env.Deferred_rc { epoch = Lfrc_harness.Scenario.deferred_rc_epoch },
            workload );
          ( name ^ "+wait-free-rc",
            Env.Wait_free { weight = Lfrc_harness.Scenario.wait_free_weight },
            workload );
        ])
      Lfrc_harness.Common.workloads
  in
  List.iteri
    (fun i (name, rc_mode, workload) ->
      (* Two passes over the same deterministic schedule: a profile-free
         pass supplies wall_ns/ops_per_sec (the profiler costs ~35% and
         would poison cross-PR comparison against profile-free
         baselines), then an instrumented pass supplies the profile
         section and the snapshot's histograms. The counters are
         identical between passes — recording happens outside the
         simulated atomics, so it never perturbs the schedule. *)
      let run ~profile =
        let metrics = Metrics.create () in
        let prof =
          if profile then Lfrc_obs.Profile.create ~metrics ()
          else Lfrc_obs.Profile.disabled
        in
        (* Blame rides the instrumented pass only: it writes nothing to
           the metrics registry and takes no scheduler steps, so the
           counters stay byte-identical to the timing pass. *)
        let blame =
          if profile then Lfrc_obs.Blame.create () else Lfrc_obs.Blame.disabled
        in
        let heap = Heap.create ~name:("bench-json-" ^ name) () in
        let env =
          Env.create ~dcas_impl:Lfrc_atomics.Dcas.Atomic_step ~rc_mode
            ~metrics ~profile:prof ~blame heap
        in
        let (), wall_ns =
          Clock.time_ns (fun () ->
              ignore
                (Lfrc_sched.Sched.run ~max_steps:400_000_000
                   (Lfrc_sched.Strategy.Random seed)
                   (fun () -> workload ~workers ~ops_per_worker ~seed env)))
        in
        (wall_ns, metrics, prof, blame)
      in
      let wall_ns, _, _, _ = run ~profile:false in
      let _, metrics, profile, blame = run ~profile:true in
      let ops = workers * ops_per_worker in
      let ops_per_sec = float_of_int ops /. (float_of_int wall_ns /. 1e9) in
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    {\"structure\": \"%s\", \"workers\": %d, \"ops\": %d, \
            \"wall_ns\": %d, \"ops_per_sec\": %.1f, \"profile\": %s, \
            \"blame\": %s, \"metrics\": %s}"
           (if i > 0 then "," else "")
           (json_escape name) workers ops wall_ns ops_per_sec
           (Lfrc_obs.Profile.to_json profile)
           (if Lfrc_obs.Blame.enabled blame then Lfrc_obs.Blame.to_json blame
            else "null")
           (Metrics.to_json (Metrics.snapshot metrics)));
      Printf.printf "workload %-22s %8.0f ops/sec (simulated, %d ops)\n%!"
        name ops_per_sec ops)
    entries;
  (* Crash-recovery counters: replay E11's crash and multi-crash cells
     with adoption on, in all three rc modes, aggregating into one
     synthetic workload entry. The adopt_* counters are deterministic
     under the simulated scheduler, so [--compare] gates recovery-
     behavior drift exactly like any structural counter. *)
  let () =
    let module E11 = Lfrc_harness.E11_chaos in
    let metrics = Metrics.create () in
    let faults =
      List.filter
        (fun f -> List.mem (E11.fault_name f) [ "crash"; "multi-crash" ])
        E11.fault_kinds
    in
    let runs = ref 0 in
    let (), wall_ns =
      Clock.time_ns (fun () ->
          List.iter
            (fun structure ->
              List.iter
                (fun fault ->
                  List.iter
                    (fun seed ->
                      List.iter
                        (fun rc_mode ->
                          incr runs;
                          ignore
                            (E11.run_one ~rc_mode ~recover:true ~metrics
                               ~structure ~fault ~seed ()))
                        [
                          Env.Eager;
                          Env.Deferred_rc
                            { epoch = Lfrc_harness.Scenario.deferred_rc_epoch };
                          Env.Wait_free
                            { weight = Lfrc_harness.Scenario.wait_free_weight };
                        ])
                    [ 1; 2; 3 ])
                faults)
            E11.structures)
    in
    let runs = !runs in
    let per_sec = float_of_int runs /. (float_of_int wall_ns /. 1e9) in
    Buffer.add_string buf
      (Printf.sprintf
         ",\n    {\"structure\": \"chaos-recovery\", \"workers\": 3, \
          \"ops\": %d, \"wall_ns\": %d, \"ops_per_sec\": %.1f, \
          \"profile\": null, \"metrics\": %s}"
         runs wall_ns per_sec
         (Metrics.to_json (Metrics.snapshot metrics)));
    Printf.printf "workload %-22s %8.0f runs/sec (recovered chaos, %d runs)\n%!"
      "chaos-recovery" per_sec runs
  in
  Buffer.add_string buf "\n  ],\n  \"experiments\": [";
  let e2_eager = ref None in
  List.iteri
    (fun i (e : Lfrc_harness.Experiments.experiment) ->
      let result, wall_ns =
        Clock.time_ns (fun () ->
            e.Lfrc_harness.Experiments.run
              Lfrc_harness.Scenario.default_config)
      in
      if e.Lfrc_harness.Experiments.id = "E2" then
        e2_eager := Some result.Lfrc_harness.Common.metrics;
      Buffer.add_string buf
        (Printf.sprintf
           "%s\n    {\"id\": \"%s\", \"title\": \"%s\", \"wall_ms\": %.1f, \
            \"metrics\": %s}"
           (if i > 0 then "," else "")
           (json_escape e.Lfrc_harness.Experiments.id)
           (json_escape e.Lfrc_harness.Experiments.title)
           (float_of_int wall_ns /. 1e6)
           (Metrics.to_json result.Lfrc_harness.Common.metrics));
      Printf.printf "experiment %-4s %8.1f ms  (%s)\n%!"
        e.Lfrc_harness.Experiments.id
        (float_of_int wall_ns /. 1e6)
        e.Lfrc_harness.Experiments.title)
    Lfrc_harness.Experiments.all;
  Buffer.add_string buf "\n  ],\n  \"deferred_rc\": ";
  (* The headline coalescing number: re-run E2 (same seeds, same op
     streams) with deferred-rc on and put the single-word CAS traffic —
     the count updates — next to the eager run recorded above. The
     schedule is deterministic per mode, so the delta is coalescing, not
     noise. *)
  (match !e2_eager with
  | None -> Buffer.add_string buf "null"
  | Some eager ->
      let deferred =
        (List.find
           (fun (e : Lfrc_harness.Experiments.experiment) ->
             e.Lfrc_harness.Experiments.id = "E2")
           Lfrc_harness.Experiments.all)
          .Lfrc_harness.Experiments.run
          { Lfrc_harness.Scenario.default_config with deferred_rc = true }
      in
      let attempts snap = Metrics.counter_value snap "dcas.cas_attempts" in
      let e = attempts eager
      and d = attempts deferred.Lfrc_harness.Common.metrics in
      let reduction =
        if e > 0 then 100.0 *. float_of_int (e - d) /. float_of_int e else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"experiment\": \"E2\", \"counter\": \"dcas.cas_attempts\", \
            \"eager\": %d, \"deferred\": %d, \"reduction_pct\": %.1f}"
           e d reduction);
      Printf.printf
        "deferred-rc: E2 dcas.cas_attempts %d eager -> %d deferred \
         (%.1f%% fewer)\n%!"
        e d reduction);
  Buffer.add_string buf ",\n  \"wait_free_rc\": ";
  (* The wait-free headline: the same E2 re-run with weighted counts.
     Two numbers matter — the count path never retries (rc_retry must be
     exactly 0: copy/destroy are single fetch-adds), and the CAS traffic
     lands below even deferred-rc because borrow/share handoffs touch no
     shared count word at all. [dcas.rmw] is reported so the fetch-add
     volume that replaced the CAS loops is visible next to the drop. *)
  (match !e2_eager with
  | None -> Buffer.add_string buf "null"
  | Some eager ->
      let wait_free =
        (List.find
           (fun (e : Lfrc_harness.Experiments.experiment) ->
             e.Lfrc_harness.Experiments.id = "E2")
           Lfrc_harness.Experiments.all)
          .Lfrc_harness.Experiments.run
          { Lfrc_harness.Scenario.default_config with wait_free_rc = true }
      in
      let counter snap key = Metrics.counter_value snap key in
      let wf = wait_free.Lfrc_harness.Common.metrics in
      let e = counter eager "dcas.cas_attempts"
      and w = counter wf "dcas.cas_attempts"
      and rc_retry = counter wf "lfrc.rc_retry"
      and rmw = counter wf "dcas.rmw" in
      let reduction =
        if e > 0 then 100.0 *. float_of_int (e - w) /. float_of_int e else 0.0
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"experiment\": \"E2\", \"counter\": \"dcas.cas_attempts\", \
            \"eager\": %d, \"wait_free\": %d, \"reduction_pct\": %.1f, \
            \"rc_retry\": %d, \"rmw\": %d}"
           e w reduction rc_retry rmw);
      Printf.printf
        "wait-free-rc: E2 dcas.cas_attempts %d eager -> %d wait-free \
         (%.1f%% fewer), rc_retry %d, fetch-adds %d\n%!"
        e w reduction rc_retry rmw);
  Buffer.add_string buf "\n}\n";
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s\n" file

(* --- regression comparison: diff a fresh --json run against a committed
   baseline and gate on ops/sec regressions, counter drift, and histogram
   observation-count drift. The policy lives in
   {!Lfrc_harness.Bench_compare} (where it is unit-tested against
   hand-edited baselines); this wrapper only does file I/O, rendering,
   and exit codes. [--report-only] downgrades every failure to a report;
   [--explain] attributes each regression to the counters, profile
   sites, and blame pairs that moved. --- *)

let compare_runs ~threshold ~report_only ~explain ~current ~baseline =
  let module J = Lfrc_util.Json in
  let module C = Lfrc_harness.Bench_compare in
  match (J.parse_file baseline, J.parse_file current) with
  | Error e, _ ->
      Printf.eprintf "cannot read baseline %s: %s\n" baseline e;
      2
  | _, Error e ->
      Printf.eprintf "cannot read current run %s: %s\n" current e;
      2
  | Ok base_doc, Ok cur_doc ->
      let v = C.diff ~threshold ~current:cur_doc ~baseline:base_doc in
      print_string
        (C.render ~threshold ~current_file:current ~baseline_file:baseline v);
      if explain then
        print_string (C.explain ~current:cur_doc ~baseline:base_doc v);
      if C.ok v then 0
      else if report_only then (
        Printf.printf "report-only mode: not failing the run\n";
        0)
      else 1

let run_compare rest =
  let baseline = ref None
  and threshold = ref 30.0
  and report_only = ref false
  and explain = ref false
  and current = ref "BENCH_pr9.json" in
  let usage () =
    prerr_endline
      "usage: bench --compare BASELINE.json [--current FILE] [--threshold \
       PCT] [--report-only] [--explain]";
    exit 2
  in
  let rec go = function
    | [] -> ()
    | "--threshold" :: v :: tl -> (
        match float_of_string_opt v with
        | Some f ->
            threshold := f;
            go tl
        | None -> usage ())
    | "--report-only" :: tl ->
        report_only := true;
        go tl
    | "--explain" :: tl ->
        explain := true;
        go tl
    | "--current" :: f :: tl ->
        current := f;
        go tl
    | f :: tl when !baseline = None && String.length f > 0 && f.[0] <> '-' ->
        baseline := Some f;
        go tl
    | _ -> usage ()
  in
  go rest;
  match !baseline with
  | None -> usage ()
  | Some baseline ->
      if not (Sys.file_exists !current) then run_json !current;
      exit
        (compare_runs ~threshold:!threshold ~report_only:!report_only
           ~explain:!explain ~current:!current ~baseline)

(* --- entry point --- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [ "micro" ] -> run_micro ()
  | [ "--json" ] -> run_json "BENCH_pr10.json"
  | [ "--json"; file ] -> run_json file
  | "--compare" :: rest -> run_compare rest
  | [] ->
      Lfrc_harness.Experiments.run_all ();
      run_micro ()
  | ids ->
      if not (Lfrc_harness.Experiments.run_ids ids) then exit 1
